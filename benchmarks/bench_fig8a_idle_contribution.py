"""Figure 8(a) — incentive to contribute while idle.

Peer 0 contributes from t=0 but only starts downloading at t=1000;
peer 1 contributes *and* downloads from t=1000; eight other peers are
busy throughout.  "We see that user 0 receives better service than
user 1 because of the credited contribution of peer 0."  Before t=1000
the other peers exploit peer 0's unused bandwidth to exceed their own
upload capacity.
"""


from repro.sim import figure_8a

from _util import print_header, print_table


def test_fig8a(benchmark):
    result = benchmark.pedantic(
        lambda: figure_8a(slots=3500, n=10, seed=0), rounds=1, iterations=1
    )
    kbps = 1024.0

    pre = result.window_mean_rates(200, 1000)
    post = result.window_mean_rates(1100, 2500)

    print_header("Figure 8(a): contributing while idle is rewarded")
    print_table(
        ["peer", "pre-1000 rate", "post-1000 rate"],
        [
            ["0 (early contributor)", f"{pre[0]:.1f}", f"{post[0]:.1f}"],
            ["1 (late joiner)", f"{pre[1]:.1f}", f"{post[1]:.1f}"],
            ["2..9 mean (busy)", f"{pre[2:].mean():.1f}", f"{post[2:].mean():.1f}"],
        ],
    )

    # Neither 0 nor 1 downloads before t=1000.
    assert pre[0] == 0.0 and pre[1] == 0.0
    # Others exceed their own 1024 kbps by consuming peer 0's idle uplink.
    assert pre[2:].mean() > kbps
    # The banked credit pays off: user 0 beats user 1 after both start.
    margin = post[0] - post[1]
    print(f"\nuser 0's credit advantage over user 1: {margin:+.1f} kbps")
    assert margin > 25.0
    # And the late joiner is not starved — it contributes from t=1000 and
    # earns service too.
    assert post[1] > 0.5 * kbps
