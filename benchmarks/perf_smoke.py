"""CI perf-smoke: cheap probes vs the committed baselines.

Standalone (numpy only, no pytest): measures the decode median at a
single cheap operating point and the batched simulation engine's
per-slot time at n=128, compares ns/op against the committed
``BENCH_decode.json`` / ``BENCH_sim.json``, and fails when a regression
exceeds the budget (a generous 3x, so CI noise on shared runners does
not flap the job).  Fresh ``BENCH_decode.smoke.json`` and
``BENCH_sim.smoke.json`` files are always written next to the baselines
for upload as CI artifacts.

Usage: ``PYTHONPATH=src python benchmarks/perf_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The measured point: p=8, m=2^15 -> k=32 for the 1 MB payload.
P, M = 8, 1 << 15
REPS = 5
BUDGET = 3.0


def measure() -> float:
    from repro.rlnc import BlockDecoder, CodingParams, FileEncoder

    data = os.urandom(1 << 20)
    params = CodingParams(p=P, m=M)
    encoder = FileEncoder(params, secret=b"bench", file_id=1)
    source = encoder.source_matrix(data)
    ids = encoder.independent_ids(1)[0]
    messages = encoder.encode_ids(source, ids)
    decoder = BlockDecoder(params, encoder.coefficients)
    samples = []
    for _ in range(REPS):
        start = time.perf_counter()
        out = decoder.decode(messages)
        samples.append(time.perf_counter() - start)
        assert out == data
    samples.sort()
    return samples[(len(samples) - 1) // 2]


#: Sim probe: per-slot time of the batched engine on the scaling
#: benchmark's n=128 honest network (same methodology, fewer slots).
SIM_N = 128


def measure_sim() -> tuple[str, float]:
    import bench_sim_scaling

    key = f"sim_step_n{SIM_N}_batched"
    return key, bench_sim_scaling.seconds_per_slot(SIM_N, "batched")


#: Sparse probe: per-slot time of the sparse engine on the scaling
#: benchmark's cohort-structured population at n=8192 (CI-sized; the
#: committed n=100k point stays a bench-suite deliverable).
SPARSE_N = 8192


def measure_sim_sparse() -> tuple[str, float, float]:
    import bench_sim_scaling

    key = f"sim_step_n{SPARSE_N}_sparse"
    seconds, state_bytes = bench_sim_scaling.sparse_slot_stats(
        SPARSE_N, slots=48, reps=1
    )
    return key, seconds, state_bytes / SPARSE_N


#: Procs probe: the process-sharded engine on the same n=8192 cohort
#: population with 2 shards.  Compared against the committed n=8192
#: *sparse* point (there is no committed procs entry at this size) at
#: the same generous 3x budget: the probe exists to catch IPC-path
#: blowups (a broken barrier, a pickling regression), not to race the
#: single-process engine slot-for-slot on a shared runner.
PROCS_SMOKE_WORKERS = 2


def measure_sim_procs() -> tuple[str, float]:
    import bench_sim_scaling

    key = f"sim_step_n{SPARSE_N}_procs_w{PROCS_SMOKE_WORKERS}"
    seconds, _ = bench_sim_scaling.sparse_slot_stats(
        SPARSE_N, slots=48, reps=1, engine="procs",
        workers=PROCS_SMOKE_WORKERS,
    )
    return key, seconds


#: Repair probe: recombination throughput at the committed
#: ``BENCH_repair.json`` operating point (GF(2^16), m=2^12, 16 helpers
#: -> 8 fresh messages), reusing the bench module's own measurement.
def measure_repair() -> tuple[str, int]:
    import bench_repair

    key = (
        f"repair_recombine_p{bench_repair.P}_m{bench_repair.M}"
        f"_h{bench_repair.HELPERS}_c{bench_repair.COUNT}"
    )
    return key, bench_repair.recombine_ns_per_message()


#: Obs-overhead probe, enforcing the "<3% overhead" instrumentation
#: claim with a 5% CI budget: the decode + sim-slot-loop workload with
#: metrics AND tracing enabled may cost at most OVERHEAD_BUDGET times
#: the same workload with observability off.  On/off passes are
#: interleaved so machine drift hits both sides equally.
OVERHEAD_BUDGET = 1.05
OVERHEAD_REPS = 9


def _median(samples: list[float]) -> float:
    samples = sorted(samples)
    return samples[(len(samples) - 1) // 2]


def measure_obs_overhead() -> int:
    """Fail (1) when metrics+tracing cost >5% over the obs-off hot path."""
    from repro import obs
    from repro.rlnc import BlockDecoder, CodingParams, FileEncoder
    from repro.sim.scenarios import figure_5a

    # k=512: the decode is dominated by a long dense elimination whose
    # runtime is stable rep-to-rep, so the on/off ratio does not flap on
    # noisy shared runners the way a short decode's would.
    params = CodingParams(p=P, m=1 << 11)
    encoder = FileEncoder(params, secret=b"bench", file_id=2)
    data = os.urandom(params.file_bytes)
    source = encoder.source_matrix(data)
    ids = encoder.independent_ids(1)[0]
    messages = encoder.encode_ids(source, ids)

    def workload() -> None:
        decoder = BlockDecoder(params, encoder.coefficients)
        assert decoder.decode(messages) == data
        figure_5a(slots=40, seed=7)

    workload()  # warm caches and lazily-built kernels before timing
    # Interleave on/off reps so machine drift (frequency scaling,
    # co-tenants) hits both sides equally, then compare medians.
    off, on = [], []
    for _ in range(OVERHEAD_REPS):
        start = time.perf_counter()
        workload()
        off.append(time.perf_counter() - start)

        with obs.observability(tracing=True, reset=True):
            start = time.perf_counter()
            workload()
            on.append(time.perf_counter() - start)

    base, enabled = _median(off), _median(on)
    ratio = enabled / base
    print(f"obs overhead: off {base * 1e3:.1f} ms, metrics+tracing on "
          f"{enabled * 1e3:.1f} ms -> ratio {ratio:.3f}x "
          f"(budget {OVERHEAD_BUDGET:.2f}x)")
    if ratio > OVERHEAD_BUDGET:
        print(f"FAIL: observability costs {ratio:.3f}x > "
              f"{OVERHEAD_BUDGET:.2f}x budget on the decode + sim slot "
              "loop hot path")
        return 1
    return 0


def _compare(baseline_name: str, key: str, ns_per_op: int) -> int:
    """Return 1 when ``key`` regressed past BUDGET vs the baseline file."""
    baseline_path = REPO_ROOT / baseline_name
    if not baseline_path.exists():
        print(f"no committed {baseline_name} baseline; skipping comparison")
        return 0
    baseline = json.loads(baseline_path.read_text())
    point = baseline.get("results", {}).get(key)
    if point is None:
        print(f"baseline has no point {key}; skipping comparison")
        return 0
    ratio = ns_per_op / point["ns_per_op"]
    print(f"baseline {key}: {point['ns_per_op']} ns/op -> ratio {ratio:.2f}x "
          f"(budget {BUDGET:.1f}x)")
    if ratio > BUDGET:
        print(f"FAIL: {key} regressed {ratio:.2f}x > {BUDGET:.1f}x budget")
        return 1
    return 0


def main() -> int:
    from repro.rlnc import CodingParams

    k = CodingParams(p=P, m=M).k
    key = f"decode_p{P}_k{k}"
    seconds = measure()
    ns_per_op = int(seconds * 1e9)
    fresh = {
        "schema": 1,
        "results": {
            key: {"p": P, "k": k, "m": M, "op": "decode_1MB",
                  "ns_per_op": ns_per_op, "samples": REPS}
        },
    }
    out_path = REPO_ROOT / "BENCH_decode.smoke.json"
    out_path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
    print(f"measured {key}: {ns_per_op} ns/op ({seconds * 1e3:.1f} ms); "
          f"wrote {out_path.name}")
    failures = _compare("BENCH_decode.json", key, ns_per_op)

    sim_key, sim_seconds = measure_sim()
    sim_ns = int(sim_seconds * 1e9)
    sparse_key, sparse_seconds, sparse_bpp = measure_sim_sparse()
    sparse_ns = int(sparse_seconds * 1e9)
    procs_key, procs_seconds = measure_sim_procs()
    procs_ns = int(procs_seconds * 1e9)
    sim_fresh = {
        "schema": 3,
        "results": {
            sim_key: {"n": SIM_N, "engine": "batched", "op": "sim_step",
                      "ns_per_op": sim_ns, "samples": 1},
            sparse_key: {"n": SPARSE_N, "engine": "sparse", "op": "sim_step",
                         "ns_per_op": sparse_ns,
                         "bytes_per_peer": round(sparse_bpp, 1),
                         "samples": 1},
            procs_key: {"n": SPARSE_N, "engine": "procs", "op": "sim_step",
                        "workers": PROCS_SMOKE_WORKERS,
                        "ns_per_op": procs_ns, "samples": 1},
        },
    }
    sim_path = REPO_ROOT / "BENCH_sim.smoke.json"
    sim_path.write_text(json.dumps(sim_fresh, indent=2, sort_keys=True) + "\n")
    print(f"measured {sim_key}: {sim_ns} ns/op ({sim_seconds * 1e6:.0f} us/slot); "
          f"wrote {sim_path.name}")
    failures += _compare("BENCH_sim.json", sim_key, sim_ns)
    print(f"measured {sparse_key}: {sparse_ns} ns/op "
          f"({sparse_seconds * 1e6:.0f} us/slot, "
          f"{sparse_bpp:.0f} B/peer of engine state)")
    failures += _compare("BENCH_sim.json", sparse_key, sparse_ns)
    print(f"measured {procs_key}: {procs_ns} ns/op "
          f"({procs_seconds * 1e6:.0f} us/slot, "
          f"{PROCS_SMOKE_WORKERS} shard workers)")
    failures += _compare("BENCH_sim.json", sparse_key, procs_ns)

    repair_key, repair_ns = measure_repair()
    repair_fresh = {
        "schema": 1,
        "results": {
            repair_key: {"op": "recombine_per_message",
                         "ns_per_op": repair_ns, "samples": 1}
        },
    }
    repair_path = REPO_ROOT / "BENCH_repair.smoke.json"
    repair_path.write_text(json.dumps(repair_fresh, indent=2, sort_keys=True) + "\n")
    print(f"measured {repair_key}: {repair_ns} ns/op; wrote {repair_path.name}")
    failures += _compare("BENCH_repair.json", repair_key, repair_ns)

    failures += measure_obs_overhead()

    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
