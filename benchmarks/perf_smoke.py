"""CI perf-smoke: one small Table II point vs the committed baseline.

Standalone (numpy only, no pytest): measures the decode median at a
single cheap operating point, compares ns/op against the committed
``BENCH_decode.json``, and fails when the regression exceeds the budget
(a generous 3x, so CI noise on shared runners does not flap the job).
A fresh ``BENCH_decode.smoke.json`` is always written next to the
baseline for upload as a CI artifact.

Usage: ``PYTHONPATH=src python benchmarks/perf_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The measured point: p=8, m=2^15 -> k=32 for the 1 MB payload.
P, M = 8, 1 << 15
REPS = 5
BUDGET = 3.0


def measure() -> float:
    from repro.rlnc import BlockDecoder, CodingParams, FileEncoder

    data = os.urandom(1 << 20)
    params = CodingParams(p=P, m=M)
    encoder = FileEncoder(params, secret=b"bench", file_id=1)
    source = encoder.source_matrix(data)
    ids = encoder.independent_ids(1)[0]
    messages = encoder.encode_ids(source, ids)
    decoder = BlockDecoder(params, encoder.coefficients)
    samples = []
    for _ in range(REPS):
        start = time.perf_counter()
        out = decoder.decode(messages)
        samples.append(time.perf_counter() - start)
        assert out == data
    samples.sort()
    return samples[(len(samples) - 1) // 2]


def main() -> int:
    from repro.rlnc import CodingParams

    k = CodingParams(p=P, m=M).k
    key = f"decode_p{P}_k{k}"
    seconds = measure()
    ns_per_op = int(seconds * 1e9)
    fresh = {
        "schema": 1,
        "results": {
            key: {"p": P, "k": k, "m": M, "op": "decode_1MB",
                  "ns_per_op": ns_per_op, "samples": REPS}
        },
    }
    out_path = REPO_ROOT / "BENCH_decode.smoke.json"
    out_path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
    print(f"measured {key}: {ns_per_op} ns/op ({seconds * 1e3:.1f} ms); "
          f"wrote {out_path.name}")

    baseline_path = REPO_ROOT / "BENCH_decode.json"
    if not baseline_path.exists():
        print("no committed BENCH_decode.json baseline; skipping comparison")
        return 0
    baseline = json.loads(baseline_path.read_text())
    point = baseline.get("results", {}).get(key)
    if point is None:
        print(f"baseline has no point {key}; skipping comparison")
        return 0
    ratio = ns_per_op / point["ns_per_op"]
    print(f"baseline {key}: {point['ns_per_op']} ns/op -> ratio {ratio:.2f}x "
          f"(budget {BUDGET:.1f}x)")
    if ratio > BUDGET:
        print(f"FAIL: decode regressed {ratio:.2f}x > {BUDGET:.1f}x budget")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
