"""Ablation — message-size quantization vs fairness (Section III-D).

"We also wish to avoid large message sizes m, which dilute our notion of
fairness ... by introducing quantization errors when nodes divide up
their upload bandwidth amongst requesting users.  We propose to overcome
this problem by dividing large files into 1 MB chunks..."

We make the trade-off concrete: peers can only assign bandwidth in
multiples of one message per reallocation period, so the quantum grows
with ``m``.  The sweep reveals two regimes: for moderate quanta the
credit feedback loop *self-dithers* — a user that received a whole
quantum has its credit advantage consumed and the next quantum goes
elsewhere, so time-averaged rates stay exactly fair (the rule acts like
a sigma-delta modulator).  Once the quantum exceeds a small
contributor's entire fair share of every peer's uplink, that user is
starved outright and fairness collapses — the cliff the paper's 1 MB
chunking keeps the system away from.
"""

import numpy as np

from repro.core import (
    PeerwiseProportionalAllocator,
    QuantizedAllocator,
    jain_index,
)
from repro.sim import AlwaysOn, PeerConfig, Simulation

from _util import print_header, print_table

CAPS = [50.0, 150.0, 400.0, 1000.0]
QUANTA = (0.01, 1.0, 10.0, 50.0, 200.0)
SLOTS = 4000


def run(quantum):
    configs = [
        PeerConfig(
            capacity=c,
            demand=AlwaysOn(),
            allocator=QuantizedAllocator(PeerwiseProportionalAllocator(), quantum),
        )
        for c in CAPS
    ]
    return Simulation(configs, seed=0).run(SLOTS)


def test_quantization_dilutes_fairness(benchmark):
    results = benchmark.pedantic(
        lambda: {q: run(q) for q in QUANTA}, rounds=1, iterations=1
    )

    print_header("Ablation: allocation quantum (~message size) vs fairness")
    rows = []
    fairness = {}
    for q in QUANTA:
        final = results[q].window_mean_rates(SLOTS - 500, SLOTS)
        normalised = final / np.asarray(CAPS)
        fairness[q] = jain_index(normalised)
        rows.append(
            [
                f"{q:g}",
                " ".join(f"{v:6.1f}" for v in final),
                f"{fairness[q]:.4f}",
            ]
        )
    print_table(["quantum kbps", "final rates", "norm. Jain"], rows)

    # Fine quanta: proportional fairness intact.
    assert fairness[0.01] > 0.9999
    assert fairness[1.0] > 0.999
    # Coarse quanta dilute fairness, monotonically at the extremes.
    assert fairness[200.0] < fairness[1.0]
    assert fairness[200.0] < 0.99
    # The smallest contributor is starved at the coarsest quantum
    # (its fair share of any peer's uplink rounds to zero).
    final_extreme = results[200.0].window_mean_rates(SLOTS - 500, SLOTS)
    assert final_extreme[0] < 0.5 * CAPS[0]
