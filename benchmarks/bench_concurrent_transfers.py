"""Concurrent real transfers — Fig. 5's fairness realised end to end.

Fig. 5 shows saturated *simulated* users converging to their own upload
rates.  Here the same configuration runs through the complete stack:
three users with 128/256/1024 kbps uplinks all download equally sized
files *at the same time*, repeatedly.  Once the ledgers have learnt the
contribution pattern, each user's realised transfer rate must order and
scale with its contribution — the proportional-fairness fixed point
emerging from actual authenticated, coded, parallel transfers rather
than from the abstract allocation recursion.
"""

import os

import numpy as np
import pytest

from repro.rlnc import CodingParams
from repro.sim import FileSharingNetwork

from _util import print_header, print_table

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)
CAPS = [128.0, 256.0, 1024.0]
FILE_BYTES = 24 * 1024  # 24 chunks each
ROUNDS = 6


def run_rounds():
    net = FileSharingNetwork(CAPS, params=PARAMS, seed=15)
    blob = os.urandom(FILE_BYTES)
    for i in range(3):
        net.publish(owner=i, name=f"f{i}", data=blob)
    per_round = []
    for _ in range(ROUNDS):
        results = net.download_concurrently([(i, f"f{i}") for i in range(3)])
        assert all(r.complete for r in results)
        per_round.append([r.mean_rate_kbps() for r in results])
    return np.asarray(per_round)


def test_concurrent_transfer_fairness(benchmark):
    rates = benchmark.pedantic(run_rounds, rounds=1, iterations=1)

    print_header(
        "Concurrent full-stack transfers: realised rate per user (kbps)"
    )
    rows = []
    for r, row in enumerate(rates):
        rows.append([r] + [f"{v:.0f}" for v in row])
    rows.append(["target"] + [f"{c:.0f}" for c in CAPS])
    print_table(["round", "user 0 (128)", "user 1 (256)", "user 2 (1024)"], rows)

    settled = rates[-2:].mean(axis=0)
    # Ordering matches contributions...
    assert settled[0] < settled[1] < settled[2]
    # ...and the settled rates are within 15% of the Fig. 5(b) fixed
    # point (chunk granularity adds quantization noise vs the abstract
    # simulator).
    assert np.allclose(settled, CAPS, rtol=0.15), settled
    # Total service equals total capacity (work-conserving while all
    # three download).
    assert settled.sum() == pytest.approx(sum(CAPS), rel=0.10)