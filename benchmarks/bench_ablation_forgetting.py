"""Ablation — forgetting factor vs adaptation speed (the paper's own
future-work suggestion).

Section V-A: "the system has slow dynamics, which could be speeded up by
disproportionately weighing newer contributions over older ones."  We
rerun the Fig. 8(b) capacity-drop scenario with exponential forgetting
in the ledgers and measure how fast the dropped peer's rate re-converges
after recovery — and verify fairness at the fixed point is unharmed.
"""

import numpy as np

from repro.core import convergence_time
from repro.sim import AlwaysOn, PeerConfig, Simulation, StepCapacity

from _util import print_header, print_table

FORGETTING = (1.0, 0.999, 0.99)
KBPS = 1024.0
N = 10
SLOTS = 10_000


def run_drop_scenario(forgetting: float):
    configs = [
        PeerConfig(
            capacity=StepCapacity([(0, KBPS), (1000, KBPS / 2), (3000, KBPS)]),
            demand=AlwaysOn(),
            forgetting=forgetting,
        )
    ]
    configs += [
        PeerConfig(capacity=KBPS, demand=AlwaysOn(), forgetting=forgetting)
        for _ in range(1, N)
    ]
    return Simulation(configs, seed=0).run(SLOTS)


def recovery_slot(result) -> int | None:
    """First slot after restoration where peer 0 stays within 5% of full rate."""
    series = result.smoothed_rates(window=10)[:, 0]
    t = convergence_time(series[3000:], KBPS, tolerance=0.05, hold=200)
    return None if t is None else 3000 + t


def test_forgetting_speeds_adaptation(benchmark):
    results = benchmark.pedantic(
        lambda: {f: run_drop_scenario(f) for f in FORGETTING}, rounds=1, iterations=1
    )

    print_header("Ablation: ledger forgetting factor vs re-convergence speed")
    rows = []
    recovery = {}
    for f in FORGETTING:
        r = results[f]
        t = recovery_slot(r)
        recovery[f] = t
        final = r.window_mean_rates(9000, 10000)
        rows.append(
            [
                f"{f:g}",
                str(t) if t is not None else f">{SLOTS}",
                f"{final[0]:.1f}",
                f"{final[1:].mean():.1f}",
            ]
        )
    print_table(
        ["forgetting", "recovery slot (5%)", "peer0 final", "others final"], rows
    )

    # The paper's configuration (no forgetting) never fully recovers in
    # the horizon; moderate forgetting recovers, and more forgetting
    # recovers faster.
    assert recovery[1.0] is None
    assert recovery[0.99] is not None
    if recovery[0.999] is not None:
        assert recovery[0.99] <= recovery[0.999]

    # Fairness at the fixed point is preserved: with forgetting, final
    # rates still match capacities.
    final = results[0.99].window_mean_rates(9000, 10000)
    assert np.allclose(final, [KBPS] * N, rtol=0.05)
