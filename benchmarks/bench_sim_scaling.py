"""Slot-loop scaling — batched allocation engine vs the reference loop.

The reference engine walks peers one by one per slot, so its cost grows
like ``n`` python-level allocator calls plus ``n`` ledger updates; the
batched engine computes the whole ``n x n`` allocation matrix in a few
vectorised (or native) passes.  Both produce bit-identical results (the
equivalence suite in ``tests/sim/test_engine_batched.py`` enforces it);
this benchmark pins down the speedup across network sizes and records
the per-slot medians in ``BENCH_sim.json`` so future PRs can diff them.

Shape claims asserted:

* >= 10x per-slot speedup at n=1024 (the tentpole target);
* no regression at n=16 (the batched engine must not lose on the small
  networks every paper scenario uses).
"""

import time

from repro.core.allocation import PeerwiseProportionalAllocator
from repro.sim import AlwaysOn, PeerConfig, Simulation

from _util import format_seconds, median, print_header, print_table, write_bench_json

SIZES = (16, 128, 1024)
#: Slots timed per run — scaled down as n grows to keep the reference
#: engine's wall time reasonable.
SLOTS = {16: 2000, 128: 300, 1024: 25}
REPS = 3


def _configs(n: int) -> list[PeerConfig]:
    """Honest saturated network with heterogeneous capacities."""
    return [
        PeerConfig(
            capacity=100.0 + (i % 32) * 25.0,
            demand=AlwaysOn(),
            allocator=PeerwiseProportionalAllocator(),
            label=f"peer {i}",
        )
        for i in range(n)
    ]


def seconds_per_slot(n: int, engine: str) -> float:
    """Median per-slot wall time of the step() loop for one engine."""
    slots = SLOTS[n]
    samples = []
    for _ in range(REPS):
        sim = Simulation(_configs(n), seed=7, engine=engine)
        start = time.perf_counter()
        for _ in range(slots):
            sim.step()
        samples.append((time.perf_counter() - start) / slots)
    return median(samples)


def test_batched_engine_scaling(benchmark):
    def run_grid():
        return {
            (n, engine): seconds_per_slot(n, engine)
            for n in SIZES
            for engine in ("reference", "batched")
        }

    timings = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    backend = Simulation(_configs(2), engine="batched").backend

    print_header(f"Slot-loop scaling: reference vs batched ({backend})")
    rows = []
    results = {}
    for n in SIZES:
        ref, fast = timings[(n, "reference")], timings[(n, "batched")]
        speedup = ref / fast
        rows.append(
            [n, format_seconds(ref), format_seconds(fast), f"{speedup:.1f}x"]
        )
        for engine, secs in (("reference", ref), ("batched", fast)):
            results[f"sim_step_n{n}_{engine}"] = {
                "n": n,
                "engine": engine,
                "op": "sim_step",
                "ns_per_op": int(secs * 1e9),
                "samples": REPS,
            }
    print_table(["n", "ref/slot", "batched/slot", "speedup"], rows)

    path = write_bench_json("BENCH_sim.json", results)
    print(f"\nbackend: {backend}; wrote {path.name}")

    assert timings[(1024, "reference")] / timings[(1024, "batched")] >= 10.0
    # No small-n regression (0.8 leaves margin for timer noise).
    assert timings[(16, "reference")] / timings[(16, "batched")] >= 0.8
