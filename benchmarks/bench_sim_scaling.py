"""Slot-loop scaling — batched and sparse engines vs the reference loop.

The reference engine walks peers one by one per slot, so its cost grows
like ``n`` python-level allocator calls plus ``n`` ledger updates; the
batched engine computes the whole ``n x n`` allocation matrix in a few
vectorised (or native) passes.  Both produce bit-identical results (the
equivalence suite in ``tests/sim/test_engine_batched.py`` enforces it);
this benchmark pins down the speedup across network sizes and records
the per-slot medians in ``BENCH_sim.json`` so future PRs can diff them.

The sparse engine (PR 8) drops the dense ``(n, n)`` state entirely:
per-peer CSR-style ledger rows plus active-set allocation make per-slot
cost scale with the requesting cohort, not the population.  Its scale
points (the cohort-structured :func:`repro.sim.sparse_population_sim`
workload at n=8192 and n=100000, and the million-peer smoke) record
``bytes_per_peer`` and ``peak_rss_bytes`` alongside ``ns_per_op`` —
the schema-2 memory columns of ``BENCH_sim.json``.

Shape claims asserted:

* >= 10x per-slot speedup at n=1024 (the tentpole target);
* no regression at n=16 (the batched engine must not lose on the small
  networks every paper scenario uses);
* sparse engine state stays under 4 KiB/peer at n=100000 (the dense
  credit matrix alone would be 800 KiB/peer);
* the million-peer smoke finishes within its documented memory cap.
"""

import time

from repro.core.allocation import PeerwiseProportionalAllocator
from repro.sim import AlwaysOn, PeerConfig, Simulation

from _util import (
    format_seconds,
    median,
    peak_rss_bytes,
    print_header,
    print_table,
    write_bench_json,
)

SIZES = (16, 128, 1024)
#: Slots timed per run — scaled down as n grows to keep the reference
#: engine's wall time reasonable.
SLOTS = {16: 2000, 128: 300, 1024: 25}
REPS = 3


def _configs(n: int) -> list[PeerConfig]:
    """Honest saturated network with heterogeneous capacities."""
    return [
        PeerConfig(
            capacity=100.0 + (i % 32) * 25.0,
            demand=AlwaysOn(),
            allocator=PeerwiseProportionalAllocator(),
            label=f"peer {i}",
        )
        for i in range(n)
    ]


def seconds_per_slot(n: int, engine: str) -> float:
    """Median per-slot wall time of the step() loop for one engine."""
    slots = SLOTS[n]
    samples = []
    for _ in range(REPS):
        sim = Simulation(_configs(n), seed=7, engine=engine)
        start = time.perf_counter()
        for _ in range(slots):
            sim.step()
        samples.append((time.perf_counter() - start) / slots)
    return median(samples)


def test_batched_engine_scaling(benchmark):
    def run_grid():
        return {
            (n, engine): seconds_per_slot(n, engine)
            for n in SIZES
            for engine in ("reference", "batched")
        }

    timings = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    backend = Simulation(_configs(2), engine="batched").backend

    print_header(f"Slot-loop scaling: reference vs batched ({backend})")
    rows = []
    results = {}
    for n in SIZES:
        ref, fast = timings[(n, "reference")], timings[(n, "batched")]
        speedup = ref / fast
        rows.append(
            [n, format_seconds(ref), format_seconds(fast), f"{speedup:.1f}x"]
        )
        for engine, secs in (("reference", ref), ("batched", fast)):
            results[f"sim_step_n{n}_{engine}"] = {
                "n": n,
                "engine": engine,
                "op": "sim_step",
                "ns_per_op": int(secs * 1e9),
                "samples": REPS,
            }
    print_table(["n", "ref/slot", "batched/slot", "speedup"], rows)

    path = write_bench_json("BENCH_sim.json", results)
    print(f"\nbackend: {backend}; wrote {path.name}")

    assert timings[(1024, "reference")] / timings[(1024, "batched")] >= 10.0
    # No small-n regression (0.8 leaves margin for timer noise).
    assert timings[(16, "reference")] / timings[(16, "batched")] >= 0.8


#: Sparse scale points: n -> timed slots of the cohort-structured
#: population (64 request cohorts, 16 dedicated givers).
SPARSE_POINTS = {8192: 96, 100_000: 32}
SPARSE_COHORTS = 64
SPARSE_GIVERS = 16
SPARSE_REPS = 3


def sparse_slot_stats(n: int, slots: int | None = None, reps: int = SPARSE_REPS):
    """Median per-slot seconds + engine state bytes for the sparse engine.

    Times whole ``run(history="none")`` passes (the engine's fast path
    — ``step()`` would materialise a dense allocation matrix for its
    return value) on fresh simulations, so ledger growth is included.
    """
    from repro.sim import sparse_population_sim

    slots = SPARSE_POINTS.get(n, 32) if slots is None else slots
    samples = []
    state_bytes = 0
    for _ in range(reps):
        sim = sparse_population_sim(
            n=n,
            cohorts=SPARSE_COHORTS,
            givers=SPARSE_GIVERS,
            slots=slots,
            seed=7,
            engine="sparse",
        )
        start = time.perf_counter()
        sim.run(slots, history="none")
        samples.append((time.perf_counter() - start) / slots)
        state_bytes = sim.memory_bytes()
    return median(samples), state_bytes


def test_sparse_engine_scale_points(benchmark):
    def run_points():
        return {n: sparse_slot_stats(n) for n in sorted(SPARSE_POINTS)}

    stats = benchmark.pedantic(run_points, rounds=1, iterations=1)
    rss = peak_rss_bytes()
    backend = Simulation(_configs(2), engine="sparse").backend

    print_header(f"Sparse engine scale points ({backend})")
    rows = []
    results = {}
    for n, (secs, state_bytes) in stats.items():
        per_peer = state_bytes / n
        rows.append(
            [n, format_seconds(secs), f"{per_peer:.0f}", f"{rss >> 20}MiB"]
        )
        results[f"sim_step_n{n}_sparse"] = {
            "n": n,
            "engine": "sparse",
            "op": "sim_step",
            "ns_per_op": int(secs * 1e9),
            "bytes_per_peer": round(per_peer, 1),
            "peak_rss_bytes": rss,
            "samples": SPARSE_REPS,
        }
    print_table(["n", "sparse/slot", "state B/peer", "peak rss"], rows)

    path = write_bench_json("BENCH_sim.json", results)
    print(f"\nbackend: {backend}; wrote {path.name}")

    # The dense engines need 8n bytes/peer of credit matrix alone
    # (800 KiB/peer at n=100k); the sparse ledgers must stay O(partners).
    assert stats[100_000][1] / 100_000 < 4096
    # Per-slot cost tracks the active cohort, not n: generous absolute
    # budget so shared-runner noise cannot flap the job.
    assert stats[100_000][0] < 0.25


def test_million_peer_smoke(benchmark):
    from repro.sim import million_peer_smoke

    def run():
        start = time.perf_counter()
        result = million_peer_smoke()
        result["wall_seconds"] = time.perf_counter() - start
        return result

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Million-peer smoke (sparse engine)")
    print_table(
        ["n", "slots", "backend", "state B/peer", "peak rss", "cap"],
        [[
            out["n"],
            out["slots"],
            out["backend"],
            f"{out['bytes_per_peer']:.0f}",
            f"{out['peak_rss_bytes'] >> 20}MiB",
            f"{out['memory_cap_bytes'] >> 30}GiB",
        ]],
    )
    results = {
        "sim_smoke_n1000000_sparse": {
            "n": out["n"],
            "engine": "sparse",
            "op": "sim_smoke",  # whole build + 4-slot run; memory is the budget
            "ns_per_op": int(out["wall_seconds"] * 1e9),
            "bytes_per_peer": round(out["bytes_per_peer"], 1),
            "peak_rss_bytes": out["peak_rss_bytes"],
            "samples": 1,
        }
    }
    path = write_bench_json("BENCH_sim.json", results)
    print(f"wrote {path.name}")
    assert out["within_cap"], (
        f"million-peer smoke peak RSS {out['peak_rss_bytes']} exceeds "
        f"the documented cap {out['memory_cap_bytes']}"
    )
