"""Slot-loop scaling — batched and sparse engines vs the reference loop.

The reference engine walks peers one by one per slot, so its cost grows
like ``n`` python-level allocator calls plus ``n`` ledger updates; the
batched engine computes the whole ``n x n`` allocation matrix in a few
vectorised (or native) passes.  Both produce bit-identical results (the
equivalence suite in ``tests/sim/test_engine_batched.py`` enforces it);
this benchmark pins down the speedup across network sizes and records
the per-slot medians in ``BENCH_sim.json`` so future PRs can diff them.

The sparse engine (PR 8) drops the dense ``(n, n)`` state entirely:
per-peer CSR-style ledger rows plus active-set allocation make per-slot
cost scale with the requesting cohort, not the population.  Its scale
points (the cohort-structured :func:`repro.sim.sparse_population_sim`
workload at n=8192 and n=100000, and the million-peer smoke) record
``bytes_per_peer`` and ``peak_rss_bytes`` alongside ``ns_per_op`` —
the schema-2 memory columns of ``BENCH_sim.json``.

Shape claims asserted:

* >= 10x per-slot speedup at n=1024 (the tentpole target);
* no regression at n=16 (the batched engine must not lose on the small
  networks every paper scenario uses);
* sparse engine state stays under 4 KiB/peer at n=100000 (the dense
  credit matrix alone would be 800 KiB/peer);
* the million-peer smoke finishes within its documented memory cap.
"""

import time

from repro.core.allocation import PeerwiseProportionalAllocator
from repro.sim import AlwaysOn, PeerConfig, Simulation

from _util import (
    format_seconds,
    median,
    peak_rss_bytes,
    print_header,
    print_table,
    write_bench_json,
)

SIZES = (16, 128, 1024)
#: Slots timed per run — scaled down as n grows to keep the reference
#: engine's wall time reasonable.
SLOTS = {16: 2000, 128: 300, 1024: 25}
REPS = 3


def _configs(n: int) -> list[PeerConfig]:
    """Honest saturated network with heterogeneous capacities."""
    return [
        PeerConfig(
            capacity=100.0 + (i % 32) * 25.0,
            demand=AlwaysOn(),
            allocator=PeerwiseProportionalAllocator(),
            label=f"peer {i}",
        )
        for i in range(n)
    ]


def seconds_per_slot(n: int, engine: str) -> float:
    """Median per-slot wall time of the step() loop for one engine."""
    slots = SLOTS[n]
    samples = []
    for _ in range(REPS):
        sim = Simulation(_configs(n), seed=7, engine=engine)
        start = time.perf_counter()
        for _ in range(slots):
            sim.step()
        samples.append((time.perf_counter() - start) / slots)
    return median(samples)


def test_batched_engine_scaling(benchmark):
    def run_grid():
        return {
            (n, engine): seconds_per_slot(n, engine)
            for n in SIZES
            for engine in ("reference", "batched")
        }

    timings = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    backend = Simulation(_configs(2), engine="batched").backend

    print_header(f"Slot-loop scaling: reference vs batched ({backend})")
    rows = []
    results = {}
    for n in SIZES:
        ref, fast = timings[(n, "reference")], timings[(n, "batched")]
        speedup = ref / fast
        rows.append(
            [n, format_seconds(ref), format_seconds(fast), f"{speedup:.1f}x"]
        )
        for engine, secs in (("reference", ref), ("batched", fast)):
            results[f"sim_step_n{n}_{engine}"] = {
                "n": n,
                "engine": engine,
                "op": "sim_step",
                "ns_per_op": int(secs * 1e9),
                "samples": REPS,
            }
    print_table(["n", "ref/slot", "batched/slot", "speedup"], rows)

    path = write_bench_json("BENCH_sim.json", results)
    print(f"\nbackend: {backend}; wrote {path.name}")

    assert timings[(1024, "reference")] / timings[(1024, "batched")] >= 10.0
    # No small-n regression (0.8 leaves margin for timer noise).
    assert timings[(16, "reference")] / timings[(16, "batched")] >= 0.8


#: Sparse scale points: n -> timed slots of the cohort-structured
#: population (64 request cohorts, 16 dedicated givers).
SPARSE_POINTS = {8192: 96, 100_000: 32}
SPARSE_COHORTS = 64
SPARSE_GIVERS = 16
SPARSE_REPS = 3


def sparse_slot_stats(
    n: int,
    slots: int | None = None,
    reps: int = SPARSE_REPS,
    engine: str = "sparse",
    workers: int | None = None,
):
    """Median per-slot seconds + engine state bytes for a scale engine.

    Times whole ``run(history="none")`` passes (the engine's fast path
    — ``step()`` would materialise a dense allocation matrix for its
    return value) on fresh simulations, so ledger growth is included.
    Works for both the sparse and the procs engine (``workers``).
    """
    from repro.sim import sparse_population_sim

    slots = SPARSE_POINTS.get(n, 32) if slots is None else slots
    samples = []
    state_bytes = 0
    for _ in range(reps):
        sim = sparse_population_sim(
            n=n,
            cohorts=SPARSE_COHORTS,
            givers=SPARSE_GIVERS,
            slots=slots,
            seed=7,
            engine=engine,
            workers=workers,
        )
        with sim:
            start = time.perf_counter()
            sim.run(slots, history="none")
            samples.append((time.perf_counter() - start) / slots)
            state_bytes = sim.memory_bytes()
    return median(samples), state_bytes


def test_sparse_engine_scale_points(benchmark):
    def run_points():
        return {n: sparse_slot_stats(n) for n in sorted(SPARSE_POINTS)}

    stats = benchmark.pedantic(run_points, rounds=1, iterations=1)
    rss = peak_rss_bytes()
    backend = Simulation(_configs(2), engine="sparse").backend

    print_header(f"Sparse engine scale points ({backend})")
    rows = []
    results = {}
    for n, (secs, state_bytes) in stats.items():
        per_peer = state_bytes / n
        rows.append(
            [n, format_seconds(secs), f"{per_peer:.0f}", f"{rss >> 20}MiB"]
        )
        results[f"sim_step_n{n}_sparse"] = {
            "n": n,
            "engine": "sparse",
            "op": "sim_step",
            "ns_per_op": int(secs * 1e9),
            "bytes_per_peer": round(per_peer, 1),
            "peak_rss_bytes": rss,
            "samples": SPARSE_REPS,
        }
    print_table(["n", "sparse/slot", "state B/peer", "peak rss"], rows)

    path = write_bench_json("BENCH_sim.json", results)
    print(f"\nbackend: {backend}; wrote {path.name}")

    # The dense engines need 8n bytes/peer of credit matrix alone
    # (800 KiB/peer at n=100k); the sparse ledgers must stay O(partners).
    assert stats[100_000][1] / 100_000 < 4096
    # Per-slot cost tracks the active cohort, not n: generous absolute
    # budget so shared-runner noise cannot flap the job.
    assert stats[100_000][0] < 0.25


#: Procs scale point and its worker counts: the tentpole target is the
#: n=100k cohort population, sharded 1- and 4-way.
PROCS_N = 100_000
PROCS_WORKERS = (1, 4)


def procs_slot_stats(workers: int):
    """Per-slot seconds plus per-shard accounting for the procs engine."""
    from repro.sim import sparse_population_sim

    slots = SPARSE_POINTS[PROCS_N]
    samples = []
    shards: list[dict] = []
    for _ in range(SPARSE_REPS):
        sim = sparse_population_sim(
            n=PROCS_N,
            cohorts=SPARSE_COHORTS,
            givers=SPARSE_GIVERS,
            slots=slots,
            seed=7,
            engine="procs",
            workers=workers,
        )
        with sim:
            start = time.perf_counter()
            sim.run(slots, history="none")
            samples.append((time.perf_counter() - start) / slots)
            shards = sim._procs.shard_stats()
    return median(samples), shards


def test_procs_engine_scale_points(benchmark):
    """The process-sharded engine at the committed n=100k point.

    Records ``sim_step_n100000_procs_w{W}`` entries with the schema-3
    ``workers`` and per-shard ``shards`` columns, and asserts the
    tentpole claim: the 4-worker per-slot time beats the PR-8 committed
    sparse number (the procs engine must earn its IPC).
    """
    import json
    from pathlib import Path

    def run_points():
        return {w: procs_slot_stats(w) for w in PROCS_WORKERS}

    stats = benchmark.pedantic(run_points, rounds=1, iterations=1)
    backend = None
    rows = []
    results = {}
    for w, (secs, shards) in stats.items():
        if backend is None:
            from repro.sim import Simulation

            with Simulation(_configs(2), engine="procs", workers=1) as probe:
                backend = probe.backend
        per_shard = [
            [s["lo"], s["hi"], round(s["memory_bytes"] / (s["hi"] - s["lo"]), 1)]
            for s in shards
        ]
        worst = max(b for _, _, b in per_shard)
        rows.append([w, format_seconds(secs), f"{worst:.0f}"])
        results[f"sim_step_n{PROCS_N}_procs_w{w}"] = {
            "n": PROCS_N,
            "engine": "procs",
            "op": "sim_step",
            "workers": w,
            "ns_per_op": int(secs * 1e9),
            "shards": per_shard,
            "samples": SPARSE_REPS,
        }
    print_header(f"Procs engine scale points at n={PROCS_N} ({backend})")
    print_table(["workers", "procs/slot", "worst shard B/peer"], rows)
    path = write_bench_json("BENCH_sim.json", results)
    print(f"wrote {path.name}")

    # Shard state stays O(partners) per peer on every shard.
    for w, (_, shards) in stats.items():
        for s in shards:
            assert s["memory_bytes"] / (s["hi"] - s["lo"]) < 4096
    # Tentpole: 4-way sharding beats the committed single-process
    # sparse baseline at the same point.
    baseline_path = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
    committed = json.loads(baseline_path.read_text())["results"]
    sparse_ns = committed[f"sim_step_n{PROCS_N}_sparse"]["ns_per_op"]
    assert stats[4][0] * 1e9 < sparse_ns, (
        f"procs w=4 {stats[4][0] * 1e9:.0f} ns/slot does not beat the "
        f"committed sparse {sparse_ns} ns/slot"
    )


#: Churn bench: four giver generations, eviction age in feedback flushes.
CHURN_KW = dict(
    n=100_000, cohorts=64, givers_per_phase=16, phases=4, phase_slots=16,
    seed=7, engine="sparse",
)


def test_churn_eviction_bounds_ledger_growth(benchmark):
    """Row eviction keeps bytes/peer bounded by the *live* giver set."""
    from repro.sim import sparse_population_churn

    def run_pair():
        out = {}
        for label, evict_age in (("none", None), ("age4", 4)):
            sim = sparse_population_churn(evict_age=evict_age, **CHURN_KW)
            slots = CHURN_KW["phases"] * CHURN_KW["phase_slots"]
            start = time.perf_counter()
            sim.run(slots, history="none")
            out[label] = {
                "seconds_per_slot": (time.perf_counter() - start) / slots,
                "bytes_per_peer": sim.memory_bytes() / CHURN_KW["n"],
                "entries": sim._ledgers.entries,
                "evicted": sim._ledgers.evicted,
            }
        return out

    out = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print_header("Giver churn: ledger growth with and without eviction")
    print_table(
        ["eviction", "per slot", "state B/peer", "entries", "evicted"],
        [
            [label, format_seconds(d["seconds_per_slot"]),
             f"{d['bytes_per_peer']:.0f}", d["entries"], d["evicted"]]
            for label, d in out.items()
        ],
    )
    results = {
        f"sim_churn_n{CHURN_KW['n']}_evict_{label}": {
            "n": CHURN_KW["n"],
            "engine": "sparse",
            "op": "sim_churn",
            "ns_per_op": int(d["seconds_per_slot"] * 1e9),
            "bytes_per_peer": round(d["bytes_per_peer"], 1),
            "samples": 1,
        }
        for label, d in out.items()
    }
    path = write_bench_json("BENCH_sim.json", results)
    print(f"wrote {path.name}")

    assert out["age4"]["evicted"] > 0
    assert out["age4"]["entries"] < out["none"]["entries"]
    # Bounded by the live generation: under half the no-eviction state,
    # which holds all four generations' dead entries.
    assert out["age4"]["bytes_per_peer"] < out["none"]["bytes_per_peer"]


def test_million_peer_smoke(benchmark):
    from repro.sim import million_peer_smoke

    def run():
        start = time.perf_counter()
        result = million_peer_smoke()
        result["wall_seconds"] = time.perf_counter() - start
        return result

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Million-peer smoke (sparse engine)")
    print_table(
        ["n", "slots", "backend", "state B/peer", "peak rss", "cap"],
        [[
            out["n"],
            out["slots"],
            out["backend"],
            f"{out['bytes_per_peer']:.0f}",
            f"{out['peak_rss_bytes'] >> 20}MiB",
            f"{out['memory_cap_bytes'] >> 30}GiB",
        ]],
    )
    results = {
        "sim_smoke_n1000000_sparse": {
            "n": out["n"],
            "engine": "sparse",
            "op": "sim_smoke",  # whole build + 4-slot run; memory is the budget
            "ns_per_op": int(out["wall_seconds"] * 1e9),
            "bytes_per_peer": round(out["bytes_per_peer"], 1),
            "peak_rss_bytes": out["peak_rss_bytes"],
            "samples": 1,
        }
    }
    path = write_bench_json("BENCH_sim.json", results)
    print(f"wrote {path.name}")
    assert out["within_cap"], (
        f"million-peer smoke peak RSS {out['peak_rss_bytes']} exceeds "
        f"the documented cap {out['memory_cap_bytes']}"
    )


def test_million_peer_smoke_procs(benchmark):
    from repro.sim import million_peer_smoke

    def run():
        start = time.perf_counter()
        result = million_peer_smoke(engine="procs", workers=4)
        result["wall_seconds"] = time.perf_counter() - start
        return result

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Million-peer smoke (procs engine, 4 shards)")
    print_table(
        ["n", "slots", "backend", "workers", "state B/peer", "peak rss"],
        [[
            out["n"],
            out["slots"],
            out["backend"],
            out["workers"],
            f"{out['bytes_per_peer']:.0f}",
            f"{out['peak_rss_bytes'] >> 20}MiB",
        ]],
    )
    results = {
        "sim_smoke_n1000000_procs": {
            "n": out["n"],
            "engine": "procs",
            "op": "sim_smoke",
            "workers": out["workers"],
            "ns_per_op": int(out["wall_seconds"] * 1e9),
            "bytes_per_peer": round(out["bytes_per_peer"], 1),
            "peak_rss_bytes": out["peak_rss_bytes"],
            "samples": 1,
        }
    }
    path = write_bench_json("BENCH_sim.json", results)
    print(f"wrote {path.name}")
    assert out["backend"].startswith("procs")
    assert out["within_cap"], (
        f"procs million-peer smoke peak RSS {out['peak_rss_bytes']} "
        f"exceeds the documented cap {out['memory_cap_bytes']}"
    )
