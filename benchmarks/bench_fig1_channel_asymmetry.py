"""Figure 1 — transmission time vs size over asymmetric links.

Paper's headline data points: a 1-hour TV-resolution MPEG-2 home video
(~1 GB) needs ~9 hours over a 256 kbps cable uplink but ~45 minutes over
the 3 Mbps downlink; differences span an order of magnitude.
"""

import numpy as np

from repro.analysis import (
    CABLE_MODEM,
    DIALUP_MODEM,
    MEDIA_EXAMPLES,
    figure1_series,
    transmission_seconds,
)

from _util import format_seconds, print_header, print_table

GB = 1 << 30
MB = 1 << 20


def run_figure1():
    sizes = [MB * (10**e) for e in range(0, 5)]  # 1 MB .. 10 GB decades
    return figure1_series(sizes), sizes


def test_fig1_series(benchmark):
    series, sizes = benchmark(run_figure1)

    print_header("Figure 1: transmission time (s) vs size, four link directions")
    columns = ["size"] + list(series)
    rows = []
    for idx, size in enumerate(sizes):
        rows.append(
            [f"{size >> 20} MB"] + [format_seconds(series[k][idx]) for k in series]
        )
    print_table(columns, rows)

    # Headline claim: ~9 hours vs ~45 minutes for the 1 GB video.
    up_hours = transmission_seconds(GB, CABLE_MODEM.upload_kbps) / 3600
    down_minutes = transmission_seconds(GB, CABLE_MODEM.download_kbps) / 60
    print(f"\n1 GB MPEG-2 video: upload {up_hours:.1f} h, download {down_minutes:.1f} min")
    assert 8.5 <= up_hours <= 10.0
    assert 40.0 <= down_minutes <= 50.0

    # Ordering: for every size, downloads beat uploads on both technologies,
    # and the cable/dialup gap spans an order of magnitude.
    for tech in (DIALUP_MODEM, CABLE_MODEM):
        up = np.array([tech.upload_seconds(s) for s in sizes])
        down = np.array([tech.download_seconds(s) for s in sizes])
        assert np.all(up > down)
    ratio = CABLE_MODEM.download_kbps / CABLE_MODEM.upload_kbps
    assert ratio > 10.0, "cable asymmetry should span an order of magnitude"

    # Media annotations fall in the plotted 1 MB - 10 GB range.
    for media in MEDIA_EXAMPLES:
        assert MB <= media.size_bytes <= 10 * GB
