"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the same rows/series the paper reports (so EXPERIMENTS.md can quote
them) and asserts the qualitative *shape* claims — who wins, by roughly
what factor, where crossovers fall.  Absolute timings are expected to
differ from the authors' 2006 NTL/C++ testbed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import REGISTRY

__all__ = [
    "print_header",
    "print_table",
    "format_seconds",
    "attach_obs_snapshot",
    "metered",
    "median",
    "peak_rss_bytes",
    "write_bench_json",
    "BENCH_SCHEMA",
    "REPO_ROOT",
]

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Results-file schema: version 2 adds the optional memory columns
#: ``peak_rss_bytes`` and ``bytes_per_peer`` next to ``ns_per_op``
#: (written by the scale points of ``bench_sim_scaling.py``); version 3
#: adds the process-sharded engine's ``workers`` count and per-shard
#: ``shards`` accounting (``[lo, hi, bytes_per_peer]`` triples).
#: Readers of older files need no changes — the new fields are additive.
BENCH_SCHEMA = 3


def median(samples) -> float:
    """Median of a non-empty sample list (lower middle for even counts)."""
    ordered = sorted(samples)
    return ordered[(len(ordered) - 1) // 2]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (Linux/macOS)."""
    import resource
    import sys

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def write_bench_json(filename: str, results: dict, merge: bool = True) -> Path:
    """Write (or merge into) a machine-readable results file at repo root.

    ``results`` maps point keys (e.g. ``"decode_p8_k64"``) to dicts with
    at least ``ns_per_op``; scale points may add the schema-2 memory
    columns ``peak_rss_bytes`` and ``bytes_per_peer``.  With ``merge``
    (the default) existing keys in the file are updated and unrelated
    keys preserved, so several benchmark modules can contribute to one
    trajectory file (version-1 files are upgraded in place; their
    entries are valid version-2 entries as-is).
    """
    path = REPO_ROOT / filename
    payload: dict = {"schema": BENCH_SCHEMA, "results": {}}
    if merge and path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("results"), dict):
                payload["results"] = existing["results"]
        except (ValueError, OSError):
            pass
    payload["results"].update(results)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def attach_obs_snapshot(benchmark, key: str = "obs") -> dict:
    """Snapshot the metrics registry into a bench's JSON output.

    Stored under ``extra_info[key]``, so running with
    ``--benchmark-json`` gives every future perf PR regression-visible
    counters (mul calls, innovative/dependent splits, ...) for free.
    Returns the snapshot for inline assertions.
    """
    snapshot = REGISTRY.snapshot()
    benchmark.extra_info[key] = snapshot
    return snapshot


def metered(fn, *args, **kwargs):
    """Run ``fn`` once with observability enabled on a clean registry.

    Timing-sensitive measurements should run *before* this (the enabled
    path adds bookkeeping); use it to capture operation counts that the
    snapshot attaches to the bench output.
    """
    from repro.obs import observability

    with observability(reset=True):
        result = fn(*args, **kwargs)
    return result


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_table(columns: list[str], rows: list[list], widths: list[int] | None = None):
    """Minimal fixed-width table printer for benchmark reports."""
    if widths is None:
        widths = []
        for c, name in enumerate(columns):
            cell_width = max(
                [len(str(name))] + [len(str(r[c])) for r in rows] if rows else [len(str(name))]
            )
            widths.append(cell_width)
    header = "  ".join(str(n).rjust(w) for n, w in zip(columns, widths))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120:
        return f"{seconds:.2f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.1f}h"
