"""Repair bench: recombination throughput and repair-bandwidth asymmetry.

Two claims are measured and committed to ``BENCH_repair.json``:

1. **Throughput** — survivor-side recombination is a single GF matmul
   over stored payloads, so minting a fresh coded message should cost
   on the order of an encode, not a decode.  We time ``recombine`` at
   the paper's recommended operating point (GF(2^16)) and record the
   median ns per fresh message.

2. **Bandwidth asymmetry** — the owner's entire uplink contribution to
   a repair epoch is 16 digest bytes per fresh message.  Against the
   naive alternative (owner re-uploads fresh coded payloads), the
   saving is the payload/digest ratio, which grows linearly with the
   message length ``m``.  This is the paper's asymmetric-channel
   constraint applied to durability maintenance: the thin owner uplink
   carries integrity metadata only, while the wide helper links carry
   the payloads.

End-to-end, a churn scenario verifies the repaired system decodes at
its pre-churn success rate with zero owner payload bytes.
"""

import time

import numpy as np

from repro.repair import RepairRecord, recombine, register_repair_digests
from repro.rlnc import CodingParams, FileEncoder
from repro.security import DigestStore
from repro.sim import repair_under_churn

from _util import print_header, print_table, write_bench_json

#: The measured recombination point: GF(2^16), 4096-symbol messages,
#: 16 helper messages in, 8 fresh messages out.
P, M, HELPERS, COUNT = 16, 1 << 12, 16, 8
REPS = 7


def _setup(p: int = P, m: int = M, helpers: int = HELPERS):
    params = CodingParams(p=p, m=m, file_bytes=(8 * m * p) // 8)
    encoder = FileEncoder(params, secret=b"bench", file_id=0xB0)
    rng = np.random.default_rng(7)
    source = encoder.source_matrix(rng.bytes(params.file_bytes))
    stored = encoder.encode_ids(source, list(range(helpers)))
    record = RepairRecord(
        file_id=0xB0,
        epoch=0,
        helper_ids=tuple(msg.message_id for msg in stored),
        count=COUNT,
    )
    return encoder, source, stored, record


def recombine_ns_per_message() -> int:
    """Median ns per fresh message minted by ``recombine``."""
    _, _, stored, record = _setup()
    recombine(record, stored)  # warm the field kernels before timing
    samples = []
    for _ in range(REPS):
        start = time.perf_counter()
        fresh = recombine(record, stored)
        samples.append(time.perf_counter() - start)
        assert len(fresh) == COUNT
    samples.sort()
    return int(samples[(len(samples) - 1) // 2] / COUNT * 1e9)


def test_recombination_throughput(benchmark):
    ns_per_msg = benchmark.pedantic(recombine_ns_per_message, rounds=1, iterations=1)

    print_header(
        f"Repair throughput: GF(2^{P}), m={M}, {HELPERS} helpers -> {COUNT} fresh"
    )
    mb_s = (M * P / 8) / (ns_per_msg / 1e9) / 1e6
    print_table(
        ["ns/message", "payload MB/s"],
        [[f"{ns_per_msg}", f"{mb_s:.1f}"]],
    )
    # Recombination is COUNT x HELPERS x m multiply-accumulates — one
    # matmul, no elimination.  Anything slower than 1 MB/s of minted
    # payload would make repair the bottleneck it is meant to avoid.
    assert mb_s >= 1.0

    write_bench_json(
        "BENCH_repair.json",
        {
            f"repair_recombine_p{P}_m{M}_h{HELPERS}_c{COUNT}": {
                "p": P,
                "m": M,
                "helpers": HELPERS,
                "count": COUNT,
                "op": "recombine_per_message",
                "ns_per_op": ns_per_msg,
                "samples": REPS,
            }
        },
    )


def test_owner_bandwidth_asymmetry(benchmark):
    def run():
        rows = []
        for m in (1 << 8, 1 << 10, 1 << 12):
            encoder, source, stored, record = _setup(m=m)
            digests = DigestStore()
            shipped = register_repair_digests(
                record, encoder.coefficients, source, digests
            )
            payload_bytes = COUNT * (m * P // 8)
            rows.append((m, shipped, payload_bytes, payload_bytes / shipped))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Owner uplink per repair epoch: digests vs naive re-upload")
    print_table(
        ["m", "digest bytes", "naive payload bytes", "saving"],
        [[f"{m}", f"{d}", f"{p}", f"{r:.0f}x"] for m, d, p, r in rows],
    )
    for m, shipped, payload, ratio in rows:
        assert shipped == 16 * COUNT  # constant, independent of m
        assert ratio >= m / 16  # saving grows linearly with m

    write_bench_json(
        "BENCH_repair.json",
        {
            "repair_owner_uplink": {
                "op": "digest_bytes_per_epoch",
                "count": COUNT,
                "digest_bytes": rows[-1][1],
                "naive_payload_bytes": rows[-1][2],
                "saving_x": int(rows[-1][3]),
                "ns_per_op": rows[-1][1],  # bytes, kept for schema shape
                "samples": 1,
            }
        },
    )


def test_churn_scenario_restores_decode(benchmark):
    def run():
        start = time.perf_counter()
        result = repair_under_churn(seed=7)
        return result, time.perf_counter() - start

    result, seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Repair under churn (seed 7): decode probability")
    print_table(
        ["pre-churn", "churned", "repaired", "owner payload B", "owner digest B"],
        [[
            f"{result['prob_pre']:.2f}",
            f"{result['prob_churn']:.2f}",
            f"{result['prob_repaired']:.2f}",
            f"{result['owner_payload_bytes']}",
            f"{result['owner_digest_bytes']}",
        ]],
    )
    assert result["dropped_message_fraction"] >= 0.30
    assert result["prob_repaired"] >= result["prob_pre"]
    assert result["owner_payload_bytes"] == 0

    write_bench_json(
        "BENCH_repair.json",
        {
            "repair_churn_scenario_seed7": {
                "op": "repair_under_churn",
                "prob_pre": result["prob_pre"],
                "prob_churn": result["prob_churn"],
                "prob_repaired": result["prob_repaired"],
                "owner_digest_bytes": result["owner_digest_bytes"],
                "helper_bandwidth_bytes": result["helper_bandwidth_bytes"],
                "ns_per_op": int(seconds * 1e9),
                "samples": 1,
            }
        },
    )
