"""Figure 6 — 24-hour home-video streaming, cooperation gains.

Three peers (256/512/1024 kbps) each stream for 12 random hours a day
while contributing around the clock.  "This cooperation benefits each
user with a download capacity greater than they would receive in a
single-user environment (shaded areas indicate gains)."
"""

import numpy as np

from repro.sim import FIG6_CAPACITIES, figure_6

from _util import print_header, print_table


def test_fig6(benchmark):
    slot_seconds = 10.0
    result = benchmark.pedantic(
        lambda: figure_6(seed=3, slot_seconds=slot_seconds), rounds=1, iterations=1
    )

    gains = result.gains_over_isolation()
    mean_req = result.mean_rate_while_requesting()

    print_header("Figure 6: per-user gains over isolation (24 h, 12 h duty cycle)")
    rows = []
    for i, cap in enumerate(FIG6_CAPACITIES):
        rows.append(
            [f"peer {i}", f"{cap:.0f}", f"{mean_req[i]:.1f}", f"{gains[i]:+.1f}"]
        )
    print_table(["peer", "U/L kbps", "rate while streaming", "gain vs isolation"], rows)

    # Every cooperating user gains, strictly.
    assert np.all(gains > 0), gains

    # While streaming, each user averages above its own uplink.
    assert np.all(mean_req > np.asarray(FIG6_CAPACITIES))

    # Whenever exactly one user streams, it should enjoy close to the
    # whole network capacity (the tall plateaus of the figure).
    solo_mask = result.requesting.sum(axis=1) == 1
    # ignore the warm-up transient
    solo_mask[: int(3600 / slot_seconds)] = False
    if solo_mask.any():
        total = float(np.asarray(FIG6_CAPACITIES).sum())
        solo_rates = result.rates[solo_mask].sum(axis=1)
        assert solo_rates.mean() > 0.9 * total
