"""Corollary 1 — pairwise fairness in the saturated regime.

As ``gamma -> 1`` the average exchanged bandwidths equalise:
``mu_bar_ij = mu_bar_ji`` for every pair — even with a dominant peer.
We sweep ``gamma`` and show the maximum relative pairwise gap shrinking
toward zero, plus the Equation (7) normalised-exchange check at
moderate load.
"""

import numpy as np

from repro.core import corollary1_gap, normalized_exchange_ratio
from repro.sim import bernoulli_network

from _util import print_header, print_table

CAPACITIES = [128.0, 256.0, 512.0, 1024.0]
GAMMAS = (0.5, 0.8, 0.95, 1.0)


def run_sweep():
    gaps = {}
    for g in GAMMAS:
        result = bernoulli_network(
            CAPACITIES, [g] * len(CAPACITIES), slots=20_000, seed=23
        )
        gaps[g] = (corollary1_gap(result.mean_alloc), result)
    return gaps


def test_corollary1_gap_shrinks(benchmark):
    gaps = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_header("Corollary 1: max relative pairwise gap vs demand gamma")
    print_table(
        ["gamma", "max |mu_ij - mu_ji| / mean"],
        [[f"{g:.2f}", f"{gaps[g][0]:.4f}"] for g in GAMMAS],
    )

    # In full saturation the gap must be tiny.
    assert gaps[1.0][0] < 0.02
    # And the saturated gap is the smallest of the sweep.
    assert gaps[1.0][0] <= min(gaps[g][0] for g in GAMMAS[:-1]) + 1e-9

    # Equation (7) is an asymptotic claim for many small peers
    # (mu_j = O(1/n), Section IV-B): test it in its validity regime —
    # a larger network of comparable-size peers with heterogeneous
    # demand probabilities.
    n = 16
    rng = np.random.default_rng(7)
    gammas = rng.uniform(0.4, 0.9, size=n)
    result = bernoulli_network([100.0] * n, gammas, slots=30_000, seed=29)
    ratio = normalized_exchange_ratio(result.mean_alloc, result.empirical_gamma())
    off_diag = ratio[~np.eye(n, dtype=bool)]
    valid = off_diag[~np.isnan(off_diag)]
    print(f"\nEq. (7) ratio spread (n={n} small peers): "
          f"[{valid.min():.3f}, {valid.max():.3f}], median "
          f"{np.median(valid):.3f}")
    assert 0.9 < np.median(valid) < 1.1
    assert np.all(valid > 0.6) and np.all(valid < 1.6)
