"""Ablation — linear-dependence overhead of mixing bundles across peers.

The encoder guarantees each *single peer's* bundle of ``k`` messages is
invertible (Section III-A's independence testing).  A user mixing
messages from many peers may, with probability ~``k/q``, draw a
dependent combination and need an extra message.  We measure the actual
overhead per field size: negligible for the large fields the paper
recommends, measurable for GF(2^4).
"""

import numpy as np

from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder

from _util import print_header, print_table

TRIALS = 120
K = 8


def overhead_for(p: int, seed: int = 0) -> tuple[float, float]:
    """Mean extra messages needed beyond k, and trial failure rate."""
    params = CodingParams(p=p, m=16, file_bytes=(K * 16 * p) // 8)
    data = bytes(range(256)) * ((params.file_bytes // 256) + 1)
    data = data[: params.file_bytes]
    encoder = FileEncoder(params, secret=b"ablate", file_id=p)
    source = encoder.source_matrix(data)
    rng = np.random.default_rng(seed)
    extras = []
    for _ in range(TRIALS):
        # Draw random distinct message ids (simulating an arbitrary mix
        # of bundles from many peers) and decode progressively.
        ids = rng.choice(10_000, size=4 * K, replace=False)
        decoder = ProgressiveDecoder(params, encoder.coefficients)
        used = 0
        for mid in ids:
            used += 1
            decoder.offer(encoder.encode_message(source, int(mid)))
            if decoder.is_complete:
                break
        assert decoder.is_complete
        assert decoder.result(len(data)) == data
        extras.append(used - K)
    return float(np.mean(extras)), float(np.mean([e > 0 for e in extras]))


def test_dependence_overhead_shrinks_with_field_size(benchmark):
    stats = benchmark.pedantic(
        lambda: {p: overhead_for(p) for p in (4, 8, 16, 32)}, rounds=1, iterations=1
    )

    print_header("Ablation: extra messages needed beyond k when mixing bundles")
    print_table(
        ["field", "mean extra msgs", "P(any extra)", "theory ~k/q"],
        [
            [
                f"GF(2^{p})",
                f"{stats[p][0]:.3f}",
                f"{stats[p][1]:.3f}",
                f"{K / (1 << p):.2e}",
            ]
            for p in (4, 8, 16, 32)
        ],
    )

    # GF(2^4): k/q = 0.5, overhead must be clearly visible.
    assert stats[4][0] > 0.05
    # The paper's recommended fields: overhead vanishes.
    assert stats[16][0] <= stats[8][0] <= stats[4][0]
    assert stats[32][0] == 0.0
