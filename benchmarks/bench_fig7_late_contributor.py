"""Figure 7 — peer 1 starts contributing only after hour 3.

The paper's reading of the figure: (i) peer 1 still gets some service in
the first hours (peer 2 splits obliviously before learning better);
(ii) peer 1 is then penalised for its non-contribution; (iii) the
penalty decays as peer 1's contributions accrue credit.
"""

import numpy as np

from repro.sim import figure_6, figure_7

from _util import print_header, print_table


def test_fig7(benchmark):
    slot_seconds = 10.0
    seed = 3
    late = benchmark.pedantic(
        lambda: figure_7(seed=seed, slot_seconds=slot_seconds), rounds=1, iterations=1
    )
    # Reference day with identical demand but full contribution.
    reference = figure_6(seed=seed, slot_seconds=slot_seconds)
    assert np.array_equal(late.requesting, reference.requesting)

    per_hour = int(3600 / slot_seconds)
    req = late.requesting[:, 1]

    def penalty(start_h, end_h):
        w = slice(start_h * per_hour, end_h * per_hour)
        mask = req[w]
        if not mask.any():
            return None
        return float((reference.rates[w, 1][mask] - late.rates[w, 1][mask]).mean())

    early = penalty(0, 8)
    mid = penalty(8, 16)
    tail = penalty(16, 24)

    print_header("Figure 7: late contributor's penalty vs the full-contribution day")
    print_table(
        ["window", "rate lost (kbps)"],
        [
            ["hours 0-8", f"{early:.1f}" if early is not None else "n/a"],
            ["hours 8-16", f"{mid:.1f}" if mid is not None else "n/a"],
            ["hours 16-24", f"{tail:.1f}" if tail is not None else "n/a"],
        ],
    )

    # (i) some service even before contributing: peer 1 is never fully
    # starved during its early streaming hours.
    early_window = slice(0, 8 * per_hour)
    if req[early_window].any():
        assert late.rates[early_window, 1][req[early_window]].mean() > 0

    # (ii) a real penalty exists early on ...
    assert early is not None and early > 0
    # (iii) ... and it decays by the end of the day.
    assert tail is not None and tail < early

    # Other peers' gains survive: cooperation still strictly helps the
    # always-contributing peers.
    gains = late.gains_over_isolation()
    assert gains[0] > 0 and gains[2] > 0
