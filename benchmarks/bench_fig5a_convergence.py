"""Figure 5(a) — ten saturated users converge to their own upload rates.

"Ten users request a large file from the system. Their download rate
converges to the upload rate (U/L) of their corresponding peers."
"""

import numpy as np

from repro.core import convergence_time, jain_index
from repro.sim import FIG5A_CAPACITIES, figure_5a

from _util import print_header, print_table


def test_fig5a(benchmark):
    result = benchmark.pedantic(
        lambda: figure_5a(slots=3500, seed=0), rounds=1, iterations=1
    )

    smoothed = result.smoothed_rates(window=10)  # the paper's presentation
    final = result.window_mean_rates(3000, 3500)

    print_header("Figure 5(a): download rate converges to own upload capacity")
    rows = []
    settle = []
    for i, cap in enumerate(FIG5A_CAPACITIES):
        t_conv = convergence_time(smoothed[:, i], cap, tolerance=0.10, hold=100)
        settle.append(t_conv)
        rows.append(
            [f"peer {i}", f"{cap:.0f}", f"{final[i]:.1f}",
             str(t_conv) if t_conv is not None else ">3500"]
        )
    print_table(["peer", "U/L kbps", "final rate", "10% settle slot"], rows)

    # Convergence: every user ends within 5% of its own capacity.
    assert np.allclose(final, FIG5A_CAPACITIES, rtol=0.05)
    # "quickly converges": all users settle inside the simulated horizon.
    assert all(t is not None for t in settle)
    # Proportional fairness: normalised rates are essentially uniform.
    normalised = final / np.asarray(FIG5A_CAPACITIES)
    assert jain_index(normalised) > 0.999

    # Early transient exists ("initially ... looks random"): the first
    # 50 slots should NOT already match capacities this tightly.
    early = result.window_mean_rates(0, 50)
    assert not np.allclose(early, FIG5A_CAPACITIES, rtol=0.05)
