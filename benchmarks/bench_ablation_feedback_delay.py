"""Ablation — how stale can the periodic informational updates be?

Section III-B lets the user report its received-bandwidth measurements
to its home peer "periodically ... off-line".  This ablation sweeps the
feedback interval and measures (a) convergence time of the Fig. 5(a)
scenario and (b) final fairness — showing the fixed point is delay
-invariant while adaptation slows roughly linearly in the delay.
"""

import numpy as np

from repro.core import convergence_time, jain_index
from repro.sim import AlwaysOn, PeerConfig, Simulation

from _util import print_header, print_table

CAPS = [100.0, 300.0, 600.0, 1000.0]
INTERVALS = (1, 10, 50, 200)
SLOTS = 6000


def run(interval):
    sim = Simulation(
        [PeerConfig(capacity=c, demand=AlwaysOn()) for c in CAPS],
        feedback_interval=interval,
    )
    return sim.run(SLOTS)


def settle_slot(result):
    smoothed = result.smoothed_rates(window=10)
    times = []
    for i, cap in enumerate(CAPS):
        t = convergence_time(smoothed[:, i], cap, tolerance=0.10, hold=100)
        times.append(t if t is not None else SLOTS)
    return max(times)


def test_feedback_delay_slows_but_preserves_fairness(benchmark):
    results = benchmark.pedantic(
        lambda: {f: run(f) for f in INTERVALS}, rounds=1, iterations=1
    )

    print_header("Ablation: feedback interval vs convergence and fairness")
    rows = []
    settles = {}
    for f in INTERVALS:
        r = results[f]
        final = r.window_mean_rates(SLOTS - 500, SLOTS)
        settles[f] = settle_slot(r)
        rows.append(
            [
                f,
                settles[f] if settles[f] < SLOTS else f">{SLOTS}",
                f"{jain_index(final / np.asarray(CAPS)):.5f}",
                " ".join(f"{v:.0f}" for v in final),
            ]
        )
    print_table(["interval", "settle slot", "norm. Jain", "final rates"], rows)

    # Fixed point unchanged: every run ends at the capacities.
    for f in INTERVALS:
        final = results[f].window_mean_rates(SLOTS - 500, SLOTS)
        assert np.allclose(final, CAPS, rtol=0.06), f

    # Adaptation slows monotonically (allow ties at the resolution of
    # the hold window).
    assert settles[1] <= settles[10] <= settles[50] <= settles[200]
    assert settles[200] > settles[1]
