"""Ablation — why Equation (2) instead of Equation (3).

Section IV-B shows the global proportional rule (Eq. 3) has "a strong
incentive for peer j to declare a high contribution mu_j".  We measure
the payoff of lying by 2x/10x/100x under both rules, and check the
analytical over-declaration gradient is positive for Eq. 3.
"""


from repro.core import eq6_lower_bound, overdeclaration_gradient
from repro.sim import bernoulli_network

from _util import print_header, print_table

CAPACITIES = [300.0] * 6
GAMMAS = [0.6] * 6
SLOTS = 15_000
FACTORS = (2.0, 10.0, 100.0)


def liar_gain(baseline: str | None, factor: float) -> float:
    truthful = bernoulli_network(CAPACITIES, GAMMAS, slots=SLOTS, seed=5, baseline=baseline)
    lying = bernoulli_network(
        CAPACITIES,
        GAMMAS,
        slots=SLOTS,
        seed=5,
        baseline=baseline,
        declared={0: CAPACITIES[0] * factor},
    )
    return float(
        lying.mean_download_bandwidth()[0] - truthful.mean_download_bandwidth()[0]
    )


def test_overdeclaration_pays_only_under_eq3(benchmark):
    def run():
        return {
            (label, f): liar_gain(baseline, f)
            for label, baseline in (("eq2", None), ("eq3", "global"))
            for f in FACTORS
        }

    gains = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation: bandwidth gained by over-declaring capacity")
    print_table(
        ["declared x", "Eq. (2) gain", "Eq. (3) gain"],
        [
            [f"{f:g}x", f"{gains[('eq2', f)]:+.1f}", f"{gains[('eq3', f)]:+.1f}"]
            for f in FACTORS
        ],
    )

    for f in FACTORS:
        # Equation (2) ignores declarations entirely.
        assert abs(gains[("eq2", f)]) < 5.0, f
        # Equation (3) rewards the lie, increasingly with the lie's size.
        assert gains[("eq3", f)] > 20.0, f
    assert gains[("eq3", 100.0)] > gains[("eq3", 2.0)]

    # The analytical gradient of Section IV-B agrees.
    grad = overdeclaration_gradient(CAPACITIES, GAMMAS, j=0)
    print(f"\nanalytic d(payoff)/d(mu_declared) at truth: {grad:+.4f} (> 0)")
    assert grad > 0

    # Sanity: the Jensen bound (Eq. 6) is a true lower bound for Eq. 3.
    result = bernoulli_network(CAPACITIES, GAMMAS, slots=SLOTS, seed=5, baseline="global")
    bound = eq6_lower_bound(CAPACITIES, GAMMAS)
    measured = result.mean_download_bandwidth()
    for j in range(len(CAPACITIES)):
        assert measured[j] >= bound[j] - 0.02 * CAPACITIES[j], j
