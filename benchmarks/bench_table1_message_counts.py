"""Table I — number of messages ``k`` to encode 1 MB per ``(q, m)`` cell.

This is exact arithmetic (``k = b / (m p)``), so the reproduction must
match the paper cell-for-cell.
"""

from repro.rlnc import (
    TABLE1_FIELD_BITS,
    TABLE1_MESSAGE_LENGTHS,
    CodingParams,
    table1_grid,
)

from _util import print_header, print_table

#: Table I exactly as printed in the paper.
PAPER_TABLE1 = {
    4: (256, 128, 64, 32, 16, 8),
    8: (128, 64, 32, 16, 8, 4),
    16: (64, 32, 16, 8, 4, 2),
    32: (32, 16, 8, 4, 2, 1),
}


def test_table1_matches_paper(benchmark):
    grid = benchmark(table1_grid)

    print_header("Table I: k needed to decode 1 MB (rows GF(2^p), columns m)")
    columns = ["q \\ m"] + [f"2^{m.bit_length() - 1}" for m in TABLE1_MESSAGE_LENGTHS]
    rows = []
    for p in TABLE1_FIELD_BITS:
        rows.append([f"GF(2^{p})"] + [grid[(p, m)] for m in TABLE1_MESSAGE_LENGTHS])
    print_table(columns, rows)

    for p in TABLE1_FIELD_BITS:
        for col, m in enumerate(TABLE1_MESSAGE_LENGTHS):
            expected = PAPER_TABLE1[p][col]
            assert grid[(p, m)] == expected, (p, m, grid[(p, m)], expected)

    # Structural invariants of the table.
    for p in TABLE1_FIELD_BITS:
        for m in TABLE1_MESSAGE_LENGTHS:
            params = CodingParams(p=p, m=m)
            # the k * m * p product exactly covers the megabyte
            assert params.k * m * p == params.file_bits
            assert params.expansion_overhead == 0.0
