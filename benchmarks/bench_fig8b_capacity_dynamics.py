"""Figure 8(b) — adaptation to a peer's changing upload bandwidth.

Ten saturated 1024 kbps peers; peer 0's uplink drops to 512 kbps at
t=1000 and recovers at t=3000.  The paper observes: the peer's download
rate falls accordingly, the others quickly recover the lost service
among themselves, the restored capacity restores the rate — and the
dynamics are visibly *slow* (motivating the forgetting-factor ablation).
"""


from repro.sim import figure_8b

from _util import print_header, print_table


def test_fig8b(benchmark):
    result = benchmark.pedantic(
        lambda: figure_8b(slots=10000, n=10, seed=0), rounds=1, iterations=1
    )

    windows = {
        "steady (500-1000)": (500, 1000),
        "dropped (2000-3000)": (2000, 3000),
        "recovering (4000-6000)": (4000, 6000),
        "recovered (9000-10000)": (9000, 10000),
    }
    peer0 = {k: result.window_mean_rates(*w)[0] for k, w in windows.items()}
    others = {k: result.window_mean_rates(*w)[1:].mean() for k, w in windows.items()}

    print_header("Figure 8(b): capacity drop at t=1000, recovery at t=3000")
    print_table(
        ["window", "peer 0 rate", "others mean"],
        [[k, f"{peer0[k]:.1f}", f"{others[k]:.1f}"] for k in windows],
    )

    # Before the drop, everyone sits near 1024.
    assert abs(peer0["steady (500-1000)"] - 1024.0) < 1024 * 0.06
    # The drop costs peer 0 service...
    assert peer0["dropped (2000-3000)"] < 0.85 * 1024.0
    # ...while the others recover the lost service among themselves.
    assert others["dropped (2000-3000)"] > 0.97 * 1024.0
    # Recovery trends back toward full rate...
    assert (
        peer0["recovered (9000-10000)"]
        > peer0["recovering (4000-6000)"]
        > peer0["dropped (2000-3000)"]
    )
    # ...but the paper notes "the system has slow dynamics": the rate is
    # still measurably below 1024 even 7000 slots after restoration.
    assert peer0["recovered (9000-10000)"] < 0.99 * 1024.0
