"""Run reports: the fairness trajectory must match the engine's own
``sim.slot`` emissions bit-for-bit (ISSUE acceptance criterion), and
download reports must aggregate chunk results and surface trace drops.
"""

import json

import pytest

from repro.obs import TRACER, TraceEvent, observability, report
from repro.sim import Simulation
from repro.sim.peer import PeerConfig


def _sim(slots=40, tracing=False):
    configs = [
        PeerConfig(capacity=cap, demand=0.6, label=f"p{i}")
        for i, cap in enumerate((256.0, 512.0, 1024.0))
    ]
    sim = Simulation(configs, seed=13)
    if not tracing:
        return sim.run(slots), None
    with observability(tracing=True, reset=True):
        result = sim.run(slots)
        return result, TRACER.events()


class TestJainTrajectory:
    def test_matches_sim_slot_events_exactly(self):
        result, events = _sim(tracing=True)
        emitted = [
            e.fields["jain"] for e in events if e.name == "sim.slot"
        ]
        assert report.jain_trajectory(result) == emitted

    def test_idle_slots_count_as_fair(self):
        configs = [PeerConfig(capacity=100.0, demand=0.0, label="idle")]
        result = Simulation(configs, seed=1).run(5)
        assert report.jain_trajectory(result) == [1.0] * 5


class TestSimulationReport:
    def test_shape_and_fairness_summary(self):
        result, events = _sim(tracing=True)
        rep = report.simulation_report(result, events=events)
        assert rep["kind"] == "simulation"
        assert rep["slots"] == 40 and rep["peers"] == 3
        fair = rep["fairness"]
        assert fair["trajectory"][-1] == fair["final"]
        assert min(fair["trajectory"]) == fair["min"]
        assert fair["trajectory"][fair["min_slot"]] == fair["min"]
        assert rep["trace"]["sim_slots"] == 40
        assert len(rep["goodput"]["mean_rate_kbps"]) == 3

    def test_json_serialisable(self):
        result, _ = _sim()
        rep = report.simulation_report(result)
        assert json.loads(json.dumps(rep)) == rep
        assert rep["trace"] is None

    def test_render_mentions_fairness_and_goodput(self):
        result, _ = _sim()
        text = report.render_report(report.simulation_report(result))
        assert "simulation report" in text
        assert "Jain" in text and "goodput" in text
        for label in ("p0", "p1", "p2"):
            assert label in text


class _FakeReport:
    """Stand-in for DownloadReport with just the aggregated fields."""

    def __init__(self, complete=True, per_peer=(10.0, 20.0), failures=()):
        self.complete = complete
        self.slots = 4
        self.seconds = 2.0
        self.bytes_received = sum(per_peer)
        self.wasted_bytes = 1.0
        self.bytes_discarded = 0.5
        self.messages_delivered = 3
        self.messages_dependent = 1
        self.messages_rejected = 0
        self.per_peer_bytes = list(per_peer)
        self.failures = list(failures)


class TestDownloadReport:
    def test_aggregates_across_chunks(self):
        rep = report.download_report([_FakeReport(), _FakeReport()])
        assert rep["kind"] == "download"
        assert rep["chunks"] == 2
        assert rep["slots"] == 8
        assert rep["per_peer_bytes"] == [20.0, 40.0]
        assert rep["messages"]["delivered"] == 6
        assert rep["goodput_kbps"] == pytest.approx(60.0 * 8 / 1000 / 4.0)
        assert rep["critical_path"] is None and rep["time_in_state"] is None

    def test_requires_at_least_one_chunk(self):
        with pytest.raises(ValueError):
            report.download_report([])

    def test_render_flags_incomplete_runs(self):
        rep = report.download_report([_FakeReport(complete=False)])
        text = report.render_report(rep)
        assert "complete: NO" in text
        assert "failures: none" in text


class TestTraceSection:
    def _events(self, dropped):
        return [
            TraceEvent(
                name="trace.meta", wall=1.0, mono_ns=0,
                fields={"events": 1, "dropped": dropped, "capacity": 4},
            ),
            TraceEvent(name="sim.slot", wall=1.0, mono_ns=5,
                       fields={"t": 0, "jain": 1.0, "requesting": 0,
                               "allocated_kbps": 0.0}),
        ]

    def test_dropped_events_produce_warning(self):
        rep = report.download_report([_FakeReport()], events=self._events(7))
        assert rep["trace"]["dropped"] == 7
        assert "dropped 7" in rep["trace"]["warning"]
        assert "WARNING" in report.render_report(rep)

    def test_no_warning_without_drops(self):
        rep = report.download_report([_FakeReport()], events=self._events(0))
        assert "warning" not in rep["trace"]
        assert rep["trace"]["events"] == 1  # meta record not counted


def test_render_rejects_unknown_kind():
    with pytest.raises(ValueError, match="not a run report"):
        report.render_report({"kind": "mystery"})
