"""Instrumentation must be behavior-neutral.

The decode pipeline and the simulator must produce bit-identical results
with observability enabled (metrics + tracing) and disabled — only the
recorded telemetry may differ.
"""

import numpy as np

from repro.obs import REGISTRY, TRACER, observability
from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore
from repro.sim import Simulation
from repro.sim.peer import PeerConfig


def _decode_run(data: bytes):
    """Full encode -> progressive decode; returns everything observable."""
    params = CodingParams(p=16, m=32, file_bytes=len(data))
    encoder = FileEncoder(params, secret=b"obs-neutral", file_id=77)
    digests = DigestStore()
    encoded = encoder.encode_bundles(data, n_peers=2, digest_store=digests)
    decoder = ProgressiveDecoder(
        params, encoder.coefficients, digest_store=digests
    )
    outcomes = [decoder.offer(msg).name for msg in encoded.all_messages()]
    return (
        decoder.result(len(data)),
        outcomes,
        decoder.rank,
        decoder.accepted,
        decoder.dependent,
        decoder.rejected,
    )


def test_progressive_decoder_bit_identical():
    rng = np.random.default_rng(7)
    data = rng.bytes(777)
    baseline = _decode_run(data)
    with observability(tracing=True, reset=True):
        instrumented = _decode_run(data)
    assert instrumented == baseline
    # ...and the instrumentation actually observed the run.
    assert REGISTRY.get("repro.rlnc.decode.innovative").value > 0
    assert REGISTRY.get("repro.gf.mul.calls").value > 0


def _sim_run():
    configs = [
        PeerConfig(capacity=cap, demand=0.6, label=f"p{i}")
        for i, cap in enumerate((256.0, 512.0, 1024.0))
    ]
    sim = Simulation(configs, seed=13)
    return sim.run(40, record_allocations=True)


def test_simulation_run_bit_identical():
    baseline = _sim_run()
    with observability(tracing=True, reset=True):
        instrumented = _sim_run()
    assert np.array_equal(baseline.rates, instrumented.rates)
    assert np.array_equal(baseline.requesting, instrumented.requesting)
    assert np.array_equal(baseline.capacities, instrumented.capacities)
    assert np.array_equal(baseline.mean_alloc, instrumented.mean_alloc)
    assert np.array_equal(baseline.alloc_history, instrumented.alloc_history)
    assert REGISTRY.get("repro.sim.slots").value == 40
    assert any(e.name == "sim.slot" for e in TRACER.events())
