"""Instrumentation must be behavior-neutral.

The decode pipeline and the simulator must produce bit-identical results
with observability enabled (metrics + tracing) and disabled — only the
recorded telemetry may differ.
"""

import numpy as np

from repro.obs import REGISTRY, TRACER, observability
from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore
from repro.sim import Simulation
from repro.sim.peer import PeerConfig


def _decode_run(data: bytes):
    """Full encode -> progressive decode; returns everything observable."""
    params = CodingParams(p=16, m=32, file_bytes=len(data))
    encoder = FileEncoder(params, secret=b"obs-neutral", file_id=77)
    digests = DigestStore()
    encoded = encoder.encode_bundles(data, n_peers=2, digest_store=digests)
    decoder = ProgressiveDecoder(
        params, encoder.coefficients, digest_store=digests
    )
    outcomes = [decoder.offer(msg).name for msg in encoded.all_messages()]
    return (
        decoder.result(len(data)),
        outcomes,
        decoder.rank,
        decoder.accepted,
        decoder.dependent,
        decoder.rejected,
    )


def test_progressive_decoder_bit_identical():
    rng = np.random.default_rng(7)
    data = rng.bytes(777)
    baseline = _decode_run(data)
    with observability(tracing=True, reset=True):
        instrumented = _decode_run(data)
    assert instrumented == baseline
    # ...and the instrumentation actually observed the run.
    assert REGISTRY.get("repro.rlnc.decode.innovative").value > 0
    assert REGISTRY.get("repro.gf.mul.calls").value > 0


def _sim_run():
    configs = [
        PeerConfig(capacity=cap, demand=0.6, label=f"p{i}")
        for i, cap in enumerate((256.0, 512.0, 1024.0))
    ]
    sim = Simulation(configs, seed=13)
    return sim.run(40, record_allocations=True)


def test_simulation_run_bit_identical():
    baseline = _sim_run()
    with observability(tracing=True, reset=True):
        instrumented = _sim_run()
    assert np.array_equal(baseline.rates, instrumented.rates)
    assert np.array_equal(baseline.requesting, instrumented.requesting)
    assert np.array_equal(baseline.capacities, instrumented.capacities)
    assert np.array_equal(baseline.mean_alloc, instrumented.mean_alloc)
    assert np.array_equal(baseline.alloc_history, instrumented.alloc_history)
    assert REGISTRY.get("repro.sim.slots").value == 40
    assert any(e.name == "sim.slot" for e in TRACER.events())
    # Span instrumentation of the slot loop is on the same hot path and
    # must be just as neutral; the spans themselves must have appeared.
    assert any(e.name == "span.start" for e in TRACER.events())


def _download_run(rng_bytes: bytes, robust: bool):
    """Full parallel download (plain or robust+faulted); returns outcomes."""
    from repro.faults import FaultPlan, PeerFault
    from repro.security import generate_keypair
    from repro.storage import MessageStore
    from repro.transfer import (
        DownloadSession,
        ParallelDownloader,
        RobustPolicy,
        ServingSession,
    )

    params = CodingParams(p=16, m=32, file_bytes=512)
    encoder = FileEncoder(params, secret=b"obs-neutral-dl", file_id=0x31)
    digests = DigestStore()
    encoded = encoder.encode_bundles(rng_bytes, n_peers=3, digest_store=digests)
    keys = generate_keypair(bits=512, seed=21)
    sessions = []
    for p in range(3):
        mstore = MessageStore()
        mstore.add_messages(encoded.bundles[p])
        sessions.append(ServingSession(mstore, keys.public))
    policy = None
    if robust:
        sessions = FaultPlan(
            seed=5, faults={0: PeerFault("pollute")}
        ).wrap(sessions)
        policy = RobustPolicy(digest_store=digests)
    for p, session in enumerate(sessions):
        DownloadSession(keys).handshake_with_retry(session, 0x31, peer=p)
    decoder = ProgressiveDecoder(params, encoder.coefficients, digests)
    dl = ParallelDownloader(sessions, decoder, lambda i, t: 20.0, policy=policy)
    report = dl.run(10_000, file_id=0x31)
    return (
        decoder.result(len(rng_bytes)),
        report.complete,
        report.slots,
        report.bytes_received,
        tuple(report.per_peer_bytes),
        tuple((f.peer, f.kind, f.slot) for f in report.failures),
        report.messages_delivered,
        report.messages_rejected,
    )


def test_plain_download_bit_identical():
    rng = np.random.default_rng(31)
    data = rng.bytes(500)
    baseline = _download_run(data, robust=False)
    with observability(tracing=True, reset=True):
        instrumented = _download_run(data, robust=False)
        assert any(e.name == "span.start" for e in TRACER.events())
    assert instrumented == baseline
    assert baseline[0] == data


def test_robust_faulted_download_bit_identical():
    rng = np.random.default_rng(32)
    data = rng.bytes(500)
    baseline = _download_run(data, robust=True)
    with observability(tracing=True, reset=True):
        instrumented = _download_run(data, robust=True)
        names = {e.name for e in TRACER.events()}
        # Peer, quarantine and download spans all fired on this run...
        assert {"span.start", "span.end", "transfer.fault"} <= names
    # ...and changed nothing observable about the transfer.
    assert instrumented == baseline
    assert baseline[0] == data
    assert baseline[5]  # the fault actually happened in both runs
