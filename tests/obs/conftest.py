"""Observability tests touch process-global state; always restore it."""

import pytest

from repro.obs import REGISTRY, TRACER, spans


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Reset switches and recorded data around every test in this package."""
    prev_metrics = REGISTRY.enabled
    prev_tracing = TRACER.enabled
    REGISTRY.reset()
    TRACER.clear()
    spans.reset_ids()
    yield
    REGISTRY.enabled = prev_metrics
    TRACER.enabled = prev_tracing
    REGISTRY.reset()
    TRACER.clear()
    spans.reset_ids()
