"""Trace events: gating, ring-buffer bounds, ordering, JSONL round-trip."""

import io

import pytest

from repro.obs import TraceBuffer, TraceEvent, read_jsonl
from repro.obs.events import ALL_EVENTS


class TestEmitGating:
    def test_disabled_by_default_and_emits_nothing(self):
        buf = TraceBuffer()
        buf.emit("x.y", a=1)
        assert len(buf) == 0

    def test_enabled_records_name_fields_and_timestamps(self):
        buf = TraceBuffer()
        buf.enabled = True
        buf.emit("rlnc.offer", outcome="accepted", rank=3)
        (event,) = buf.events()
        assert event.name == "rlnc.offer"
        assert event.fields == {"outcome": "accepted", "rank": 3}
        assert event.wall > 0 and event.mono_ns > 0


class TestRingBuffer:
    def test_drops_oldest_at_capacity(self):
        buf = TraceBuffer(capacity=3)
        buf.enabled = True
        for i in range(5):
            buf.emit("e", i=i)
        assert [e.fields["i"] for e in buf.events()] == [2, 3, 4]
        assert buf.dropped == 2

    def test_clear(self):
        buf = TraceBuffer(capacity=2)
        buf.enabled = True
        buf.emit("e")
        buf.emit("e")
        buf.emit("e")
        buf.clear()
        assert len(buf) == 0 and buf.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestOrdering:
    def test_mono_ns_is_nondecreasing_in_buffer_order(self):
        buf = TraceBuffer()
        buf.enabled = True
        for i in range(200):
            buf.emit("e", i=i)
        stamps = [e.mono_ns for e in buf.events()]
        assert stamps == sorted(stamps)


class TestJsonlRoundTrip:
    def test_file_round_trip(self, tmp_path):
        buf = TraceBuffer()
        buf.enabled = True
        buf.emit("transfer.start", peers=4, file_id=-1)
        buf.emit("transfer.complete", slot=9, delivered=12)
        path = tmp_path / "trace.jsonl"
        assert buf.write_jsonl(path) == 2
        events = read_jsonl(path)
        assert events == buf.events()

    def test_stream_round_trip(self):
        buf = TraceBuffer()
        buf.enabled = True
        buf.emit("sim.slot", t=0, jain=1.0)
        sink = io.StringIO()
        buf.write_jsonl(sink)
        events = read_jsonl(io.StringIO(sink.getvalue()))
        assert events == buf.events()

    def test_event_dict_round_trip(self):
        event = TraceEvent(name="e", wall=1.5, mono_ns=7, fields={"k": "v"})
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestMetaHeader:
    def test_written_file_starts_with_meta_record(self, tmp_path):
        buf = TraceBuffer(capacity=3)
        buf.enabled = True
        for i in range(5):  # 2 dropped
            buf.emit("e", i=i)
        path = tmp_path / "trace.jsonl"
        assert buf.write_jsonl(path) == 3  # meta excluded from the count
        import json

        first = json.loads(path.read_text().splitlines()[0])
        assert first["name"] == "trace.meta"
        assert first["fields"] == {"events": 3, "dropped": 2, "capacity": 3}
        assert first["mono_ns"] == 0  # sorts before every real event

    def test_read_jsonl_strips_meta_by_default(self, tmp_path):
        buf = TraceBuffer()
        buf.enabled = True
        buf.emit("e", i=0)
        path = tmp_path / "trace.jsonl"
        buf.write_jsonl(path)
        assert read_jsonl(path) == buf.events()
        with_meta = read_jsonl(path, meta=True)
        assert len(with_meta) == 2
        assert with_meta[0].name == "trace.meta"
        assert with_meta[1:] == buf.events()

    def test_empty_buffer_still_writes_meta(self, tmp_path):
        buf = TraceBuffer()
        buf.enabled = True
        path = tmp_path / "trace.jsonl"
        assert buf.write_jsonl(path) == 0
        (meta,) = read_jsonl(path, meta=True)
        assert meta.fields["events"] == 0 and meta.fields["dropped"] == 0


def test_event_taxonomy_names_are_dotted_and_unique():
    assert len(set(ALL_EVENTS)) == len(ALL_EVENTS)
    for name in ALL_EVENTS:
        subsystem, _, event = name.partition(".")
        assert subsystem and event, name
