"""Causal spans: ids, parenting, gating, context propagation, JSONL."""

import io

import pytest

from repro.obs import TRACER, TraceBuffer, read_jsonl
from repro.obs.events import SPAN_END, SPAN_START
from repro.obs.spans import (
    SpanHandle,
    current_span,
    extract,
    finish_span,
    inject,
    span_scope,
    start_span,
)


def _buffer() -> TraceBuffer:
    buf = TraceBuffer()
    buf.enabled = True
    return buf


class TestGating:
    def test_start_span_returns_none_when_disabled(self):
        buf = TraceBuffer()  # disabled
        assert start_span("op", tracer=buf) is None
        assert len(buf) == 0

    def test_finish_span_accepts_none_handle(self):
        buf = _buffer()
        finish_span(None, tracer=buf)
        assert len(buf) == 0

    def test_scope_is_noop_when_disabled(self):
        buf = TraceBuffer()
        with span_scope("op", tracer=buf) as handle:
            assert handle is None
            assert current_span() is None
        assert len(buf) == 0

    def test_global_tracer_default_respects_switch(self):
        assert start_span("op") is None  # TRACER off via conftest
        TRACER.enabled = True
        handle = start_span("op")
        assert handle is not None
        finish_span(handle)
        assert [e.name for e in TRACER.events()] == [SPAN_START, SPAN_END]


class TestIdsAndParenting:
    def test_ids_are_deterministic_after_reset(self):
        buf = _buffer()
        first = start_span("a", tracer=buf)
        second = start_span("b", tracer=buf)
        assert (first.span_id, second.span_id) == (1, 2)

    def test_root_span_shape(self):
        buf = _buffer()
        root = start_span("root", tracer=buf)
        assert root.trace_id == root.span_id
        assert root.parent_id == 0

    def test_scope_parents_nested_spans(self):
        buf = _buffer()
        with span_scope("outer", tracer=buf) as outer:
            assert current_span() is outer
            child = start_span("inner", tracer=buf)
            assert child.parent_id == outer.span_id
            assert child.trace_id == outer.trace_id
        assert current_span() is None

    def test_nested_scopes_restore_parent(self):
        buf = _buffer()
        with span_scope("a", tracer=buf) as a:
            with span_scope("b", tracer=buf) as b:
                assert current_span() is b
                assert b.parent_id == a.span_id
            assert current_span() is a

    def test_explicit_none_parent_forces_root(self):
        buf = _buffer()
        with span_scope("outer", tracer=buf):
            orphan = start_span("detached", parent=None, tracer=buf)
        assert orphan.parent_id == 0
        assert orphan.trace_id == orphan.span_id

    def test_explicit_parent_handle_wins_over_contextvar(self):
        buf = _buffer()
        remote = SpanHandle(trace_id=99, span_id=42, parent_id=0, op="remote")
        with span_scope("local", tracer=buf):
            child = start_span("served", parent=remote, tracer=buf)
        assert child.trace_id == 99
        assert child.parent_id == 42


class TestEventsAndStatus:
    def test_start_event_carries_attrs(self):
        buf = _buffer()
        start_span("op", tracer=buf, peer=3, slot=7)
        (event,) = buf.events()
        assert event.name == SPAN_START
        assert event.fields["attrs"] == {"peer": 3, "slot": 7}
        assert event.fields["op"] == "op"

    def test_finish_status_recorded(self):
        buf = _buffer()
        handle = start_span("op", tracer=buf)
        finish_span(handle, status="polluted", tracer=buf)
        end = buf.events()[-1]
        assert end.name == SPAN_END
        assert end.fields["status"] == "polluted"
        assert end.fields["span_id"] == handle.span_id

    def test_scope_marks_error_status_on_exception(self):
        buf = _buffer()
        with pytest.raises(RuntimeError):
            with span_scope("op", tracer=buf):
                raise RuntimeError("boom")
        end = buf.events()[-1]
        assert end.name == SPAN_END
        assert end.fields["status"] == "error"

    def test_scope_ok_status_on_clean_exit(self):
        buf = _buffer()
        with span_scope("op", tracer=buf):
            pass
        assert buf.events()[-1].fields["status"] == "ok"


class TestContextPropagation:
    def test_inject_extract_round_trip(self):
        span = SpanHandle(trace_id=5, span_id=9, parent_id=2, op="x")
        carrier = inject(span)
        remote = extract(carrier)
        assert remote.trace_id == 5
        assert remote.span_id == 9
        assert remote.parent_id == 0  # remote parent is a local root

    def test_inject_defaults_to_current_span(self):
        buf = _buffer()
        with span_scope("outer", tracer=buf) as outer:
            carrier = inject()
        assert carrier["span_id"] == outer.span_id

    def test_inject_without_span_leaves_carrier_unchanged(self):
        carrier = inject(carrier={"k": "v"})
        assert carrier == {"k": "v"}

    @pytest.mark.parametrize(
        "carrier",
        [{}, {"trace_id": 1}, {"trace_id": "x", "span_id": 2}, {"span_id": None}],
    )
    def test_extract_tolerates_malformed_carriers(self, carrier):
        assert extract(carrier) is None


class TestJsonlRoundTrip:
    def test_span_events_survive_jsonl(self):
        buf = _buffer()
        with span_scope("outer", tracer=buf, n=2):
            child = start_span("inner", tracer=buf)
            finish_span(child, tracer=buf)
        sink = io.StringIO()
        buf.write_jsonl(sink)
        events = read_jsonl(io.StringIO(sink.getvalue()))
        assert events == buf.events()
        names = [e.name for e in events]
        assert names == [SPAN_START, SPAN_START, SPAN_END, SPAN_END]
