"""Trace analysis: span forests, critical paths and timelines.

The end-to-end cases drive a real faulted ``ParallelDownloader`` run
under tracing (ISSUE acceptance criterion: the analyzer reconstructs
the correct span tree, with the failed peer session on the critical
path or quarantined, from an actual trace).
"""

import pytest

from repro.faults import FaultPlan, PeerFault
from repro.obs import TRACER, TraceEvent, analyze, observability
from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore, generate_keypair
from repro.storage import MessageStore
from repro.transfer import (
    DownloadSession,
    ParallelDownloader,
    RobustPolicy,
    ServingSession,
)

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0x55


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=512, seed=9)


def _faulted_download_events(rng, keys):
    """Run a 3-peer download with peer 0 polluting; return the trace."""
    data = rng.bytes(500)
    digests = DigestStore()
    encoder = FileEncoder(PARAMS, b"s", file_id=FILE_ID)
    encoded = encoder.encode_bundles(data, n_peers=3, digest_store=digests)
    sessions = []
    for p in range(3):
        mstore = MessageStore()
        mstore.add_messages(encoded.bundles[p])
        sessions.append(ServingSession(mstore, keys.public))
    sessions = FaultPlan(seed=1, faults={0: PeerFault("pollute")}).wrap(sessions)
    for p, session in enumerate(sessions):
        DownloadSession(keys).handshake_with_retry(session, FILE_ID, peer=p)
    decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
    with observability(tracing=True, reset=True):
        dl = ParallelDownloader(
            sessions,
            decoder,
            lambda i, t: 20.0,
            policy=RobustPolicy(digest_store=digests),
        )
        report = dl.run(10_000, file_id=FILE_ID)
        events = TRACER.events()
    assert report.complete
    return events, report


class TestSpanForestFromRealDownload:
    def test_tree_shape_and_statuses(self, rng, keys):
        events, _ = _faulted_download_events(rng, keys)
        forest = analyze.build_span_forest(events)
        downloads = [r for r in forest if r.op == "transfer.download"]
        assert len(downloads) == 1
        root = downloads[0]
        peers = [c for c in root.children if c.op == "transfer.peer"]
        assert [c.attrs["peer"] for c in peers] == [0, 1, 2]
        statuses = {c.attrs["peer"]: c.status for c in peers}
        assert statuses[0] == "polluted"
        assert statuses[1] == "ok" and statuses[2] == "ok"
        quarantines = [
            g for c in peers for g in c.children if g.op == "transfer.quarantine"
        ]
        assert len(quarantines) == 1
        assert quarantines[0].attrs["kind"] == "polluted"
        # Every span in the download run closed.
        for node in root.walk():
            assert node.end_ns is not None
            assert node.duration_ns >= 0

    def test_critical_path_ends_inside_a_peer_session(self, rng, keys):
        events, _ = _faulted_download_events(rng, keys)
        forest = analyze.build_span_forest(events)
        root = next(r for r in forest if r.op == "transfer.download")
        path = analyze.critical_path(root)
        assert path[0] is root
        assert path[-1].op in ("transfer.peer", "transfer.quarantine")

    def test_time_in_state_charges_the_faulty_peer(self, rng, keys):
        events, report = _faulted_download_events(rng, keys)
        states = analyze.time_in_state(events)
        assert states[0]["fault"] == "polluted"
        assert states[0]["discarded"] == report.failure_of(0).messages_discarded
        honest = [p for p in states if states[p]["fault"] is None]
        for p in honest:
            assert states[p]["quarantined_slots"] == 0


def _span_events(pairs):
    """Synthetic span.start/span.end events from compact tuples."""
    events = []
    t = 0
    for kind, fields in pairs:
        t += 10
        name = "span.start" if kind == "s" else "span.end"
        events.append(
            TraceEvent(name=name, wall=1.0, mono_ns=t, fields=fields)
        )
    return events


class TestForestEdgeCases:
    def test_orphan_parent_becomes_root(self):
        events = _span_events(
            [
                ("s", {"trace_id": 9, "span_id": 5, "parent_id": 4, "op": "x",
                       "attrs": {}}),
                ("e", {"trace_id": 9, "span_id": 5, "op": "x", "status": "ok"}),
            ]
        )
        (root,) = analyze.build_span_forest(events)
        assert root.span_id == 5 and root.children == []

    def test_unfinished_span_has_none_duration(self):
        events = _span_events(
            [("s", {"trace_id": 1, "span_id": 1, "parent_id": 0, "op": "x",
                    "attrs": {}})]
        )
        (root,) = analyze.build_span_forest(events)
        assert root.end_ns is None and root.duration_ns is None

    def test_critical_path_prefers_unfinished_children(self):
        events = _span_events(
            [
                ("s", {"trace_id": 1, "span_id": 1, "parent_id": 0, "op": "r",
                       "attrs": {}}),
                ("s", {"trace_id": 1, "span_id": 2, "parent_id": 1, "op": "a",
                       "attrs": {}}),
                ("e", {"trace_id": 1, "span_id": 2, "op": "a", "status": "ok"}),
                ("s", {"trace_id": 1, "span_id": 3, "parent_id": 1, "op": "b",
                       "attrs": {}}),
                ("e", {"trace_id": 1, "span_id": 1, "op": "r", "status": "ok"}),
            ]
        )
        (root,) = analyze.build_span_forest(events)
        path = analyze.critical_path(root)
        assert [n.op for n in path] == ["r", "b"]  # b never finished

    def test_empty_trace_gives_empty_forest(self):
        assert analyze.build_span_forest([]) == []


class TestFairnessTimeline:
    def test_rows_sorted_and_typed(self):
        events = [
            TraceEvent(
                name="sim.slot", wall=1.0, mono_ns=20,
                fields={"t": 1, "jain": 0.5, "requesting": 2,
                        "allocated_kbps": 300.0},
            ),
            TraceEvent(
                name="sim.slot", wall=1.0, mono_ns=10,
                fields={"t": 0, "jain": 1.0, "requesting": 0,
                        "allocated_kbps": 0.0},
            ),
        ]
        timeline = analyze.fairness_timeline(events)
        assert [row["t"] for row in timeline] == [0, 1]
        assert timeline[1] == {
            "t": 1, "jain": 0.5, "requesting": 2, "allocated_kbps": 300.0
        }

    def test_non_slot_events_ignored(self):
        events = [TraceEvent(name="rlnc.offer", wall=1.0, mono_ns=1, fields={})]
        assert analyze.fairness_timeline(events) == []


class TestTraceMeta:
    def test_meta_found_and_absent(self):
        meta_event = TraceEvent(
            name="trace.meta", wall=1.0, mono_ns=0,
            fields={"events": 2, "dropped": 3, "capacity": 10},
        )
        assert analyze.trace_meta([meta_event])["dropped"] == 3
        assert analyze.trace_meta([]) is None
