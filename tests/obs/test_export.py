"""OpenMetrics export: rendering, the grammar validator, file writing."""

import io

import pytest

from repro.obs import (
    REGISTRY,
    render_openmetrics,
    validate_openmetrics,
    write_openmetrics,
)
from repro.obs.export import metric_name


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("repro.gf.mul.calls") == "repro_gf_mul_calls"

    def test_leading_digit_gets_prefixed(self):
        assert metric_name("9lives") == "_9lives"


class TestRender:
    def test_counter_maps_to_total_sample(self):
        snap = {
            "repro.x.calls": {
                "kind": "counter", "description": "calls made", "value": 3.0
            }
        }
        text = render_openmetrics(snap)
        assert "# TYPE repro_x_calls counter" in text
        assert "# HELP repro_x_calls calls made" in text
        assert "repro_x_calls_total 3\n" in text
        validate_openmetrics(text)

    def test_unset_gauge_is_omitted_set_gauge_rendered(self):
        snap = {
            "a.unset": {"kind": "gauge", "description": "d", "value": 0.0,
                        "set": False},
            "a.set": {"kind": "gauge", "description": "d", "value": 2.5,
                      "set": True},
        }
        text = render_openmetrics(snap)
        assert "a_unset" not in text
        assert "a_set 2.5" in text
        validate_openmetrics(text)

    def test_histogram_maps_to_summary_with_quantiles(self):
        snap = {
            "h.ns": {
                "kind": "histogram", "description": "nanos", "count": 4,
                "total": 100.0, "min": 10.0, "max": 40.0, "mean": 25.0,
                "p50": 20.0, "p90": 38.0, "p99": 40.0,
            }
        }
        text = render_openmetrics(snap)
        assert "# TYPE h_ns summary" in text
        assert 'h_ns{quantile="0.5"} 20' in text
        assert 'h_ns{quantile="0.9"} 38' in text
        assert 'h_ns{quantile="0.99"} 40' in text
        assert "h_ns_count 4" in text
        assert "h_ns_sum 100" in text
        validate_openmetrics(text)

    def test_empty_snapshot_is_just_eof(self):
        text = render_openmetrics({})
        assert text == "# EOF\n"
        validate_openmetrics(text)

    def test_real_registry_snapshot_validates(self):
        REGISTRY.enabled = True
        counter = REGISTRY.counter("repro.test.export.calls", "test counter")
        hist = REGISTRY.histogram("repro.test.export.ns", "test histogram")
        gauge = REGISTRY.gauge("repro.test.export.depth", "test gauge")
        counter.inc(5)
        gauge.set(1.5)
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        text = render_openmetrics(REGISTRY.snapshot())
        validate_openmetrics(text)
        assert "repro_test_export_calls_total 5" in text


class TestWrite:
    def test_write_to_path_and_stream_agree(self, tmp_path):
        path = tmp_path / "metrics.om"
        n = write_openmetrics(path)
        sink = io.StringIO()
        assert write_openmetrics(sink) == n
        assert path.read_text() == sink.getvalue()
        assert n == len(path.read_bytes())
        validate_openmetrics(path.read_text())


class TestValidator:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("# EOF", "newline"),
            ("x 1\n", "must end with '# EOF'"),
            ("# EOF\nx 1\n# EOF\n", "exactly once"),
            ("\n# EOF\n", "blank lines"),
            ("# TYPE x wibble\n# EOF\n", "unknown type"),
            ("# TYPE x counter\n# TYPE x counter\nx_total 1\n# EOF\n",
             "duplicate TYPE"),
            ("x_total 1\n# EOF\n", "no preceding TYPE"),
            ("# TYPE x counter\nx_total notanumber\n# EOF\n", "unparsable"),
            ("# BOGUS x counter\n# EOF\n", "malformed metadata"),
            ('# TYPE x gauge\nx{9bad="v"} 1\n# EOF\n', "malformed label"),
        ],
    )
    def test_rejects_grammar_violations(self, text, match):
        with pytest.raises(ValueError, match=match):
            validate_openmetrics(text)

    def test_accepts_labels_and_unit_metadata(self):
        text = (
            "# TYPE x summary\n"
            "# UNIT x seconds\n"
            "# HELP x a summary\n"
            'x{quantile="0.5"} 1.5\n'
            "x_count 2\n"
            "x_sum 3\n"
            "# EOF\n"
        )
        validate_openmetrics(text)
