"""Profiling hooks: @timed, span(), and the disabled no-op path."""

import pytest

from repro.obs import MetricsRegistry, span, timed


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestTimed:
    def test_registers_histogram_at_decoration_time(self, registry):
        @timed("t.ns", registry=registry)
        def fn():
            return 1

        assert "t.ns" in registry.names()
        assert registry.get("t.ns").count == 0

    def test_records_when_enabled(self, registry):
        @timed("t.ns", registry=registry)
        def fn(x):
            return x * 2

        registry.enabled = True
        assert fn(21) == 42
        snap = registry.get("t.ns").snapshot()
        assert snap["count"] == 1
        assert snap["min"] >= 0

    def test_noop_when_disabled(self, registry):
        @timed("t.ns", registry=registry)
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert registry.get("t.ns").count == 0

    def test_records_even_when_function_raises(self, registry):
        @timed("t.ns", registry=registry)
        def boom():
            raise RuntimeError("boom")

        registry.enabled = True
        with pytest.raises(RuntimeError):
            boom()
        assert registry.get("t.ns").count == 1

    def test_preserves_metadata_and_wrapped(self, registry):
        @timed("t.ns", registry=registry)
        def documented():
            """Docstring."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Docstring."
        assert documented.__wrapped__ is not None


class TestSpan:
    def test_records_duration_when_enabled(self, registry):
        s = span("s.ns", registry=registry)
        registry.enabled = True
        with s:
            pass
        assert registry.get("s.ns").count == 1

    def test_noop_when_disabled(self, registry):
        s = span("s.ns", registry=registry)
        with s:
            pass
        assert registry.get("s.ns").count == 0

    def test_nesting_one_instance(self, registry):
        s = span("s.ns", registry=registry)
        registry.enabled = True
        with s:
            with s:
                pass
        assert registry.get("s.ns").count == 2

    def test_records_on_exception(self, registry):
        s = span("s.ns", registry=registry)
        registry.enabled = True
        with pytest.raises(ValueError):
            with s:
                raise ValueError
        assert registry.get("s.ns").count == 1

    def test_toggle_mid_flight_does_not_crash(self, registry):
        """Enabling/disabling while a span is open must stay balanced."""
        s = span("s.ns", registry=registry)
        with s:  # opened disabled -> nothing recorded even if enabled now
            registry.enabled = True
        assert registry.get("s.ns").count == 0
        with s:  # opened enabled -> recorded even if disabled at exit
            registry.enabled = False
        assert registry.get("s.ns").count == 1
