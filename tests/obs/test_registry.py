"""Metrics registry: counters, gauges, histogram quantiles, threading."""

import threading

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, quantile
from repro.obs.registry import DEFAULT_QUANTILES


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_thread_safety_of_increments(self):
        """8 threads x 10k increments must land exactly, no lost updates."""
        c = Counter("c")
        threads, per_thread = 8, 10_000

        def worker():
            for _ in range(per_thread):
                c.inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert c.value == threads * per_thread

    def test_reset(self):
        c = Counter("c")
        c.inc(7)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_and_snapshot(self):
        g = Gauge("g", "desc")
        assert not g.snapshot()["set"]
        g.set(0.75)
        snap = g.snapshot()
        assert snap["value"] == 0.75 and snap["set"]


class TestHistogramQuantiles:
    def test_matches_numpy_linear_interpolation(self):
        h = Histogram("h")
        values = list(range(100))
        for v in values:
            h.observe(v)
        snap = h.snapshot()
        for q in DEFAULT_QUANTILES:
            expected = float(np.quantile(values, q))
            assert snap[f"p{int(q * 100)}"] == pytest.approx(expected), q

    def test_single_observation(self):
        h = Histogram("h")
        h.observe(42.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == snap["p50"] == snap["p99"] == 42.0

    def test_summary_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 16.0
        assert snap["mean"] == 4.0
        assert snap["min"] == 1.0 and snap["max"] == 10.0

    def test_reservoir_bounds_memory_but_not_count(self):
        h = Histogram("h", max_samples=64)
        for v in range(1000):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 1000
        assert len(h._samples) == 64
        # min/max are exact even though quantiles are sampled.
        assert snap["min"] == 0.0 and snap["max"] == 999.0
        # The reservoir is uniform: the sampled median must land in the
        # bulk of the distribution, not at an extreme.
        assert 100 < snap["p50"] < 900

    def test_reservoir_at_exactly_max_samples_is_lossless(self):
        # Filling the reservoir to exactly its bound must keep every
        # observation (no eviction until max_samples is *exceeded*), so
        # quantiles at the boundary are exact, not sampled.
        h = Histogram("h", max_samples=50)
        values = [float(v) for v in range(50)]
        for v in values:
            h.observe(v)
        assert sorted(h._samples) == values
        snap = h.snapshot()
        assert snap["count"] == 50
        for q in DEFAULT_QUANTILES:
            assert snap[f"p{int(q * 100)}"] == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_reset_mid_observation_clears_and_keeps_working(self):
        h = Histogram("h", max_samples=8)
        for v in range(100):
            h.observe(float(v))
        h.reset()
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["total"] == 0.0
        assert "min" not in snap and "p50" not in snap
        # Post-reset observations rebuild the summary from scratch —
        # min/max must not remember pre-reset extremes.
        h.observe(5.0)
        h.observe(7.0)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["min"] == 5.0 and snap["max"] == 7.0

    def test_quantile_helper_validates(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)
        assert quantile([1.0, 2.0], 0.5) == 1.5


class TestRegistry:
    def test_create_or_get_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "first")
        b = reg.counter("x", "second description ignored")
        assert a is b
        assert a.description == "first"

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_includes_zero_valued_metrics(self):
        reg = MetricsRegistry()
        reg.counter("a.count")
        reg.histogram("a.ns")
        snap = reg.snapshot()
        assert snap["a.count"]["value"] == 0
        assert snap["a.ns"]["count"] == 0

    def test_snapshot_sorted_and_json_able(self):
        import json

        reg = MetricsRegistry()
        reg.gauge("z")
        reg.counter("a")
        h = reg.histogram("m")
        h.observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(5)
        reg.reset()
        assert reg.get("a") is c
        assert c.value == 0

    def test_disabled_by_default(self):
        assert not MetricsRegistry().enabled

    def test_empty_registry_snapshot_is_empty_dict(self):
        assert MetricsRegistry().snapshot() == {}


class TestRenderEdgeCases:
    def test_render_snapshot_of_empty_registry(self):
        from repro.obs import render_catalog, render_snapshot

        text = render_snapshot({})
        assert isinstance(text, str)  # no crash on nothing to show
        catalog = render_catalog({}, events=())
        assert isinstance(catalog, str)

    def test_render_snapshot_single_sample_histogram(self):
        from repro.obs import render_snapshot

        h = Histogram("h.ns", "one sample")
        h.observe(42.0)
        text = render_snapshot({"h.ns": h.snapshot()})
        assert "h.ns" in text
        assert "42" in text
