"""Unit tests for the chunked-playback analysis."""

import pytest

from repro.analysis import min_startup_for_smooth, simulate_playback

# 1 MB chunks at 8 Mbps play for ~1.05 s each; use round numbers instead:
# 1000-byte chunks at 8 kbps -> exactly 1 second per chunk.
LEN = [1000, 1000, 1000, 1000]
RATE = 8.0


class TestSmoothPlayback:
    def test_all_ready_upfront(self):
        report = simulate_playback([0, 0, 0, 0], LEN, RATE)
        assert report.smooth
        assert report.startup_seconds == 0
        assert report.completion_seconds == pytest.approx(4.0)

    def test_just_in_time_arrivals(self):
        # Chunk i arrives exactly when needed: 0, 1, 2, 3 seconds.
        report = simulate_playback([0, 1, 2, 3], LEN, RATE)
        assert report.smooth
        assert report.chunk_start_seconds == (0.0, 1.0, 2.0, 3.0)

    def test_download_faster_than_playback(self):
        report = simulate_playback([0, 0.5, 1.0, 1.5], LEN, RATE)
        assert report.smooth
        assert report.completion_seconds == pytest.approx(4.0)


class TestStalls:
    def test_single_stall(self):
        # Chunk 2 arrives 0.5 s late.
        report = simulate_playback([0, 1, 2.5, 3.5], LEN, RATE)
        assert report.stall_count == 1
        assert report.total_stall_seconds == pytest.approx(0.5)
        assert report.completion_seconds == pytest.approx(4.5)

    def test_every_chunk_late(self):
        report = simulate_playback([0, 2, 4, 6], LEN, RATE)
        assert report.stall_count == 3
        assert report.total_stall_seconds == pytest.approx(3.0)

    def test_buffering_avoids_stalls(self):
        # Same arrivals, but waiting for 2 chunks up front absorbs the gap.
        arrivals = [0, 1.5, 2.5, 3.5]
        eager = simulate_playback(arrivals, LEN, RATE, startup_buffer_chunks=1)
        patient = simulate_playback(arrivals, LEN, RATE, startup_buffer_chunks=2)
        assert eager.stall_count > 0
        assert patient.smooth
        assert patient.startup_seconds == pytest.approx(1.5)


class TestMinStartup:
    def test_matches_simulation(self):
        arrivals = [0, 2, 4, 4.5]
        t = min_startup_for_smooth(arrivals, LEN, RATE)
        assert t == pytest.approx(2.0)  # chunk 1 at 2s minus 1s played
        # Verify: delaying start to t is exactly smooth.
        report = simulate_playback([max(a, t) for a in arrivals], LEN, RATE)
        assert report.smooth

    def test_zero_when_all_ready(self):
        assert min_startup_for_smooth([0, 0, 0], LEN[:3], RATE) == 0.0

    def test_uniform_late_arrivals(self):
        # Constant-rate arrivals slower than playback: T = last gap.
        arrivals = [0, 2, 4, 6]
        assert min_startup_for_smooth(arrivals, LEN, RATE) == pytest.approx(3.0)


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            simulate_playback([0], [100], 0.0)

    def test_misaligned(self):
        with pytest.raises(ValueError):
            simulate_playback([0, 1], [100], 8.0)

    def test_out_of_order_arrivals(self):
        with pytest.raises(ValueError):
            simulate_playback([1, 0], [100, 100], 8.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            simulate_playback([], [], 8.0)


class TestEndToEnd:
    def test_streaming_decoder_feed(self, rng):
        """Chunk-ready times from an actual simulated download feed the
        playback model: parallel peers make real-time streaming work
        where a single uplink stalls."""
        from repro.rlnc import ChunkedEncoder, CodingParams, StreamingDecoder
        from repro.transfer import kbps_to_bytes

        params = CodingParams(p=16, m=64, file_bytes=1024)
        movie = rng.bytes(8 * 1024)
        enc = ChunkedEncoder(params, b"s", base_file_id=1)
        manifest, chunks = enc.encode_file(movie, n_peers=4)

        def ready_times(peer_rate_kbps, n_peers):
            # Serial per-peer streams at the given rate, chunk bundles
            # interleaved round-robin across peers.
            decoder = StreamingDecoder(manifest, enc)
            ready = []
            pending = {
                p: [m for ef in chunks for m in ef.bundles[p]] for p in range(n_peers)
            }
            t = 0.0
            carry = {p: 0.0 for p in range(n_peers)}
            while not decoder.is_complete:
                t += 1.0
                for p in range(n_peers):
                    carry[p] += kbps_to_bytes(peer_rate_kbps)
                    while pending[p] and carry[p] >= pending[p][0].wire_size():
                        carry[p] -= pending[p][0].wire_size()
                        decoder.offer(pending[p].pop(0))
                        for _ in decoder.pop_ready():
                            ready.append(t)
            return ready

        # Playback at 8 kbps media rate (1 chunk/sec of content); a
        # 4 kbps uplink cannot keep up alone, four in parallel can.
        solo = ready_times(4.0, 1)
        quad = ready_times(4.0, 4)
        solo_report = simulate_playback(solo, manifest.chunk_lengths, 8.0)
        quad_report = simulate_playback(quad, manifest.chunk_lengths, 8.0)
        assert quad_report.startup_seconds < solo_report.startup_seconds
        assert quad_report.completion_seconds < solo_report.completion_seconds
