"""Tests for the mean-field model of the allocation dynamics."""

import numpy as np
import pytest

from repro.analysis import mean_field_trajectory, predicted_convergence_slot
from repro.sim import AlwaysOn, BernoulliDemand, PeerConfig, Simulation


class TestExactnessUnderSaturation:
    def test_matches_simulator_slot_for_slot(self):
        """With gamma = 1 the engine is deterministic, so the mean-field
        recursion must reproduce it exactly."""
        caps = [100.0, 300.0, 600.0]
        init = 1e-6
        sim = Simulation(
            [PeerConfig(capacity=c, demand=AlwaysOn()) for c in caps],
            initial_credit=init,
        )
        simulated = sim.run(400)
        predicted = mean_field_trajectory(caps, [1.0] * 3, 400, initial_credit=init)
        assert np.allclose(predicted.rates, simulated.rates, rtol=1e-9, atol=1e-9)

    def test_final_credits_match_ledgers(self):
        caps = [128.0, 1024.0]
        init = 1e-6
        sim = Simulation(
            [PeerConfig(capacity=c, demand=AlwaysOn()) for c in caps],
            initial_credit=init,
        )
        sim.run(200)
        predicted = mean_field_trajectory(caps, [1.0, 1.0], 200, initial_credit=init)
        for i in range(2):
            assert np.allclose(
                predicted.credits[i], sim.peers[i].ledger.credits, rtol=1e-9
            )

    def test_fixed_point_is_capacity(self):
        caps = [128.0, 256.0, 1024.0]  # dominant-peer case of Fig. 5(b)
        traj = mean_field_trajectory(caps, [1.0] * 3, 4000)
        assert np.allclose(traj.rates[-1], caps, rtol=0.01)


class TestBernoulliApproximation:
    def test_tracks_simulation_mean_rates(self):
        caps = [200.0] * 10
        gammas = [0.6] * 10
        traj = mean_field_trajectory(caps, gammas, 4000)
        sim = Simulation(
            [PeerConfig(capacity=c, demand=BernoulliDemand(0.6)) for c in caps],
            seed=5,
        ).run(20_000)
        predicted = traj.rates[-1]
        measured = sim.mean_download_bandwidth()
        # Homogeneous many-peer case: mean field within a few percent.
        assert np.allclose(predicted, measured, rtol=0.06)

    def test_idle_peers_boost_requesters(self):
        # One user with gamma=1 among idle contributors should be
        # predicted to capture everyone's capacity.
        traj = mean_field_trajectory([100.0] * 4, [1.0, 0.0, 0.0, 0.0], 2000)
        assert traj.rates[-1][0] == pytest.approx(400.0, rel=0.01)
        assert np.allclose(traj.rates[-1][1:], 0.0)


class TestForgetting:
    def test_forgetting_preserves_fixed_point(self):
        caps = [100.0, 500.0]
        plain = mean_field_trajectory(caps, [1.0, 1.0], 3000, forgetting=1.0)
        fading = mean_field_trajectory(caps, [1.0, 1.0], 3000, forgetting=0.99)
        assert np.allclose(plain.rates[-1], fading.rates[-1], rtol=0.02)


class TestPredictedConvergence:
    def test_prediction_close_to_simulated(self):
        from repro.core import convergence_time

        caps = [100.0, 300.0, 600.0, 1000.0]
        predicted = predicted_convergence_slot(caps, [1.0] * 4, tolerance=0.10)
        assert predicted is not None
        sim = Simulation(
            [PeerConfig(capacity=c, demand=AlwaysOn()) for c in caps]
        ).run(3000)
        simulated = max(
            convergence_time(sim.rates[:, i], caps[i], tolerance=0.10, hold=50)
            for i in range(4)
        )
        # In saturation both are the same deterministic process.
        assert abs(predicted - simulated) <= 2

    def test_none_when_horizon_too_short(self):
        out = predicted_convergence_slot(
            [1.0, 1e9], [1.0, 1.0], tolerance=1e-9, max_slots=2
        )
        assert out is None


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mean_field_trajectory([1.0], [1.0, 1.0], 10)
        with pytest.raises(ValueError):
            mean_field_trajectory([1.0], [1.0], 0)
        with pytest.raises(ValueError):
            mean_field_trajectory([1.0], [1.0], 10, forgetting=0.0)
