"""Unit tests for the Fig. 1 channel asymmetry model."""

import math

import pytest

from repro.analysis import (
    CABLE_MODEM,
    DIALUP_MODEM,
    MEDIA_EXAMPLES,
    aggregate_download_seconds,
    asymmetry_ratio,
    figure1_series,
    peers_needed,
    transmission_seconds,
)

GB = 1 << 30


class TestTransmissionTime:
    def test_basic_arithmetic(self):
        # 1000 bytes at 8 kbps = 8000 bits / 8000 bps = 1 s
        assert transmission_seconds(1000, 8.0) == pytest.approx(1.0)

    def test_zero_rate_infinite(self):
        assert transmission_seconds(100, 0.0) == math.inf

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            transmission_seconds(-1, 10.0)

    def test_paper_headline_numbers(self):
        """~9 hours up, ~45 minutes down for the 1 GB video on cable."""
        up_hours = transmission_seconds(GB, CABLE_MODEM.upload_kbps) / 3600
        down_min = transmission_seconds(GB, CABLE_MODEM.download_kbps) / 60
        assert 8.5 < up_hours < 10
        assert 40 < down_min < 50

    def test_paper_technology_parameters(self):
        assert DIALUP_MODEM.upload_kbps == 28.0
        assert DIALUP_MODEM.download_kbps == 56.0
        assert CABLE_MODEM.upload_kbps == 256.0
        assert CABLE_MODEM.download_kbps == 3000.0


class TestFigure1Series:
    def test_four_lines(self):
        series = figure1_series([1 << 20, 1 << 30])
        assert len(series) == 4
        assert all(len(v) == 2 for v in series.values())

    def test_monotone_in_size(self):
        series = figure1_series([1 << 20, 1 << 25, 1 << 30])
        for values in series.values():
            assert values[0] < values[1] < values[2]

    def test_upload_slower_than_download(self):
        series = figure1_series([1 << 30])
        for tech in (DIALUP_MODEM, CABLE_MODEM):
            up = series[f"{tech.name} upload @ {tech.upload_kbps:g} kbps"][0]
            down = series[f"{tech.name} download @ {tech.download_kbps:g} kbps"][0]
            assert up > down


class TestAggregation:
    def test_ratio_and_peers(self):
        assert asymmetry_ratio(DIALUP_MODEM) == pytest.approx(2.0)
        assert peers_needed(DIALUP_MODEM) == 2
        assert peers_needed(CABLE_MODEM) == 12  # ceil(3000/256)

    def test_aggregate_sums_uplinks(self):
        t1 = aggregate_download_seconds(GB, [256.0], 3000.0)
        t4 = aggregate_download_seconds(GB, [256.0] * 4, 3000.0)
        assert t4 == pytest.approx(t1 / 4)

    def test_downlink_caps(self):
        capped = aggregate_download_seconds(GB, [256.0] * 100, 3000.0)
        assert capped == pytest.approx(transmission_seconds(GB, 3000.0))


class TestMediaExamples:
    def test_video_is_one_gb_class(self):
        video = next(m for m in MEDIA_EXAMPLES if "MPEG-2" in m.name)
        assert video.size_bytes == GB

    def test_sizes_ascending(self):
        sizes = [m.size_bytes for m in MEDIA_EXAMPLES]
        assert sizes == sorted(sizes)
