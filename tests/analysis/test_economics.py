"""Tests for the storage-for-bandwidth economics of Section I."""

import pytest

from repro.analysis import CachingEconomics, storage_donated_bytes

GB = 1 << 30


class TestStorageDonated:
    def test_counts_headers(self):
        # 8 messages of (16 + 131072) bytes x 3 files
        out = storage_donated_bytes(
            file_bytes=1 << 20, k=8, message_bytes=131072, files_hosted=3
        )
        assert out == 3 * 8 * (16 + 131072)


class TestCachingEconomics:
    @pytest.fixture
    def cable_video(self):
        """The paper's motivating case: 1 GB video, cable modem, 12
        neighbours (enough to fill the downlink)."""
        return CachingEconomics(
            file_bytes=GB,
            upload_kbps=256.0,
            download_kbps=3000.0,
            n_peers=12,
        )

    def test_solo_matches_figure1(self, cable_video):
        assert cable_video.solo_access_seconds() / 3600 == pytest.approx(9.3, abs=0.1)

    def test_shared_is_downlink_capped(self, cable_video):
        # 12 x 256 = 3072 > 3000: downlink binds.
        assert cable_video.shared_access_seconds() / 60 == pytest.approx(
            47.7, abs=0.5
        )

    def test_hours_saved(self, cable_video):
        assert cable_video.hours_saved_per_access() == pytest.approx(8.5, abs=0.2)

    def test_storage_cost(self, cable_video):
        # hosting 12 GB of neighbours' coded data at $1/GB
        assert cable_video.storage_cost_dollars() == pytest.approx(12.0)

    def test_exchange_rate_is_cheap(self, cable_video):
        """The Section I claim: the one-time storage cost is small
        against even a single access's time savings."""
        rate = cable_video.dollars_per_hour_saved()
        assert rate < 2.0  # < $2 per hour saved, once, then free forever

    def test_no_benefit_when_alone(self):
        solo = CachingEconomics(
            file_bytes=GB, upload_kbps=256.0, download_kbps=3000.0, n_peers=1
        )
        assert solo.hours_saved_per_access() == pytest.approx(0.0)
        assert solo.dollars_per_hour_saved() == float("inf")

    def test_benefit_scales_until_downlink(self):
        times = [
            CachingEconomics(
                file_bytes=GB, upload_kbps=256.0, download_kbps=3000.0, n_peers=n
            ).shared_access_seconds()
            for n in (1, 2, 4, 8, 16)
        ]
        assert times[0] > times[1] > times[2] > times[3] >= times[4]
