"""Unit tests for analytical fixed points vs simulation."""

import numpy as np
import pytest

from repro.analysis import (
    expected_alloc_fixed_point,
    expected_rate_from_alloc,
    saturated_fixed_point,
)
from repro.sim import bernoulli_network


class TestSaturatedFixedPoint:
    def test_returns_capacities(self):
        caps = [100.0, 200.0, 300.0]
        assert np.array_equal(saturated_fixed_point(caps), caps)

    def test_matches_saturated_simulation(self):
        caps = [128.0, 256.0, 1024.0]
        result = bernoulli_network(caps, [1.0] * 3, slots=3000, seed=1)
        final = result.window_mean_rates(2500, 3000)
        assert np.allclose(final, saturated_fixed_point(caps), rtol=0.05)


class TestExpectedAllocFixedPoint:
    def test_shape_and_nonnegative(self):
        A = expected_alloc_fixed_point([100.0, 200.0], [0.5, 0.7])
        assert A.shape == (2, 2)
        assert np.all(A >= 0)

    def test_capacity_conserved_in_expectation(self):
        mu = np.array([100.0, 200.0, 300.0])
        g = np.array([0.8, 0.8, 0.8])
        A = expected_alloc_fixed_point(mu, g)
        # Peer i sends at most mu_i on average (less if nobody requests).
        assert np.all(A.sum(axis=1) <= mu + 1e-6)

    def test_saturated_limit_recovers_capacities(self):
        mu = [100.0, 250.0, 400.0]
        A = expected_alloc_fixed_point(mu, [1.0, 1.0, 1.0])
        rates = expected_rate_from_alloc(A)
        assert np.allclose(rates, mu, rtol=0.02)

    def test_lower_bounds_simulation_rates(self):
        """The fixed point applies Jensen's inequality, so it must be a
        systematic LOWER bound on simulated mean rates — and not a
        vacuous one (within ~40% of the measurement)."""
        mu = [200.0, 400.0, 600.0, 800.0]
        g = [0.6, 0.6, 0.6, 0.6]
        A = expected_alloc_fixed_point(mu, g)
        predicted = expected_rate_from_alloc(A)
        result = bernoulli_network(mu, g, slots=20_000, seed=8)
        measured = result.mean_download_bandwidth()
        assert np.all(measured >= predicted - 0.02 * np.asarray(mu))
        assert np.all(predicted >= 0.6 * measured)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            expected_alloc_fixed_point([1.0, 2.0], [0.5])

    def test_zero_demand_zero_alloc(self):
        A = expected_alloc_fixed_point([100.0, 100.0], [0.0, 0.0])
        assert np.all(A == 0.0)
