"""Suppression semantics: one rule, one line; unknown ids are findings;
the JSON report round-trips losslessly."""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintReport, run_lint

FIXTURE = (
    Path(__file__).parent / "fixtures" / "src" / "repro" / "core" / "suppressed.py"
)


def report():
    return run_lint([FIXTURE])


class TestSuppressionSemantics:
    def test_allow_silences_exactly_that_rule_on_that_line(self):
        got = [(f.line, f.rule) for f in report().findings]
        # line 7: det-unseeded-rng allowed -> silent.
        assert (7, "det-unseeded-rng") not in got

    def test_unsuppressed_duplicate_still_fires(self):
        got = [(f.line, f.rule) for f in report().findings]
        # line 11: same violation, but the allow names a bogus rule.
        assert (11, "det-unseeded-rng") in got

    def test_unknown_rule_id_is_itself_a_finding(self):
        findings = report().findings
        supp = [f for f in findings if f.rule == "lint-suppression"]
        assert [(f.line) for f in supp] == [11]
        assert "no-such-rule" in supp[0].message

    def test_allow_does_not_bleed_to_other_rules_on_same_line(self):
        got = [(f.line, f.rule) for f in report().findings]
        # line 17 has two violations and one allow: the sum is
        # silenced, the divide-before-multiply is not.
        assert (17, "float-bare-sum") not in got
        assert (17, "float-div-before-mul") in got

    def test_allow_inside_string_literal_is_inert(self):
        # The engine reads comments via tokenize: the string on line 21
        # mentions the allow syntax but suppresses nothing and is not an
        # unknown-suppression finding either.
        assert all(f.line != 21 for f in report().findings)


class TestJsonRoundTrip:
    def test_report_round_trips_through_json(self):
        first = report()
        clone = LintReport.from_json(first.to_json())
        assert clone.findings == first.findings
        assert clone.files_checked == first.files_checked
        assert sorted(clone.rules_run) == sorted(first.rules_run)
        assert clone.counts_by_rule == first.counts_by_rule

    def test_json_shape_is_stable(self):
        blob = report().to_dict()
        assert blob["version"] == 1
        assert {"rule", "path", "line", "col", "message"} == set(
            blob["findings"][0]
        )
        assert blob["counts_by_rule"]["lint-suppression"] == 1
