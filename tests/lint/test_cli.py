"""`repro lint` CLI: exit codes, formats, rule filtering, rule listing."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"
BAD_DET = str(FIXTURES / "core" / "bad_determinism.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", BAD_DET]) == 1
        out = capsys.readouterr().out
        assert "det-wallclock" in out
        assert f"{BAD_DET}:11:" in out or "bad_determinism.py:11:" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rule", "nope", BAD_DET]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/here.py"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestFormats:
    def test_json_format_parses_and_matches_engine(self, capsys):
        assert main(["lint", "--format", "json", BAD_DET]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["version"] == 1
        rules = {f["rule"] for f in blob["findings"]}
        assert "det-wallclock" in rules and "det-unseeded-rng" in rules
        lines = {
            (f["line"], f["rule"]) for f in blob["findings"]
        }
        assert (11, "det-wallclock") in lines

    def test_rule_filter(self, capsys):
        assert main(["lint", "--rule", "det-urandom", BAD_DET]) == 1
        out = capsys.readouterr().out
        assert "det-urandom" in out and "det-wallclock" not in out


class TestListRules:
    def test_lists_every_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in (
            "det-wallclock",
            "det-stdlib-random",
            "det-urandom",
            "det-unseeded-rng",
            "float-div-before-mul",
            "float-ledger-dtype",
            "float-bare-sum",
            "trace-unknown-event",
            "trace-fields",
            "api-batched-scalar-pair",
            "api-mutable-default",
            "lint-suppression",
            "lint-syntax",
        ):
            assert rid in out, rid
