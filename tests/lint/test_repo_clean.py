"""The repository's own tree passes its own invariant linter.

This is the in-tree twin of the CI `lint-invariants` gate: if a change
reintroduces an unseeded RNG, a divide-before-multiply, an undeclared
trace event or a batch-only allocator, this test fails before CI does.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint import run_lint

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


@pytest.mark.skipif(
    not (REPO_ROOT / "pyproject.toml").is_file(),
    reason="repro is not running from a source checkout",
)
def test_repo_tree_is_lint_clean():
    paths = [
        REPO_ROOT / name
        for name in ("src", "tests", "benchmarks", "examples")
        if (REPO_ROOT / name).is_dir()
    ]
    report = run_lint(paths)
    assert report.findings == [], "\n" + report.format_text()
    assert report.exit_code() == 0


@pytest.mark.skipif(
    not (REPO_ROOT / "pyproject.toml").is_file(),
    reason="repro is not running from a source checkout",
)
def test_emit_sites_cover_every_declared_event():
    """The declared taxonomy and EVENT_FIELDS stay in sync."""
    from repro.obs.events import ALL_EVENTS, EVENT_FIELDS

    assert set(EVENT_FIELDS) == set(ALL_EVENTS)
