"""Suppression-semantics fixture; tests pin these exact lines."""

import numpy as np


def allowed():
    return np.random.default_rng()  # repro: allow[det-unseeded-rng]


def misspelled():
    return np.random.default_rng()  # repro: allow[no-such-rule]


def one_of_two(total, cap, ws):
    # The allow silences only float-bare-sum; the divide-before-multiply
    # on the same line must still be reported.
    return sum(ws) / total * cap  # repro: allow[float-bare-sum]


def not_a_comment():
    return "# repro: allow[det-unseeded-rng] inside a string is inert"
