"""Planted float-safety violations; tests pin these exact lines."""

import numpy as np


def share(weights, total, capacity):
    return weights / total * capacity  # line 7: float-div-before-mul


def make_ledger(n):
    ledger = np.zeros((n, n), dtype=np.float32)  # line 11: float-ledger-dtype
    return ledger


def total_rate(rates):
    return sum(rates)  # line 16: float-bare-sum


def fine_forms(weights, total, capacity, rates):
    safe = weights * capacity / total
    ratio = capacity * (weights / total)
    unit = capacity / 8.0 * total
    scalar = sum(r * r for r in rates)
    ledger = np.zeros((4, 4))
    return safe, ratio, unit, scalar, ledger
