"""Fixture helpers: nondeterminism sources behind innocent wrappers.

The flow fixtures import these so the planted bugs only surface through
interprocedural, cross-module taint propagation — a purely syntactic
rule looking at the sink file sees nothing.  ``cyc_a``/``cyc_b`` form a
call cycle for the bounded-depth tests.
"""

import os
import time


def jitter():
    return time.time_ns() % 1000


def scale(x):
    return x * 0.5


def env_knob(name):
    return os.environ.get(name, "0")


def cyc_a(x, depth):
    if depth <= 0:
        return x
    return cyc_b(x, depth - 1)


def cyc_b(x, depth):
    return cyc_a(x, depth)
