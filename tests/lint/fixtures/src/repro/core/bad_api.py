"""Planted API-contract violations; tests pin these exact lines."""

from typing import Protocol


class RowsOnlyAllocator:  # line 6: api-batched-scalar-pair
    def allocate_rows(self, indices, capacities, requesting, ledgers, declared, t):
        return None


class BatchSpec(Protocol):  # Protocol declarations are exempt
    def allocate_rows(self, indices, capacities, requesting, ledgers, declared, t):
        ...


class PairedAllocator:
    def allocate(self, index, capacity, requesting, ledger, declared, t):
        return None

    def allocate_rows(self, indices, capacities, requesting, ledgers, declared, t):
        return None


def collect(items, acc=[]):  # line 24: api-mutable-default
    acc.extend(items)
    return acc


def tagged(item, tags={}):  # line 29: api-mutable-default
    return tags.get(item)
