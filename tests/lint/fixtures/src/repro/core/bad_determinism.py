"""Planted determinism violations; tests pin these exact lines."""

import os
import random
import time

import numpy as np


def wallclock():
    return time.time()  # line 11: det-wallclock


def entropy():
    return os.urandom(8)  # line 15: det-urandom


def unseeded():
    return np.random.default_rng()  # line 19: det-unseeded-rng


def legacy_global():
    return np.random.random()  # line 23: det-unseeded-rng


def stdlib_draw():
    return random.random()
