"""Fixture: a wall-clock value laundered through helpers into a ledger.

``det-taint-ledger`` must follow time.time_ns() -> jitter() -> scale()
-> record_from() across two modules; no single expression here matches
any syntactic det-* pattern.
"""

from .flow_helpers import jitter, scale


class MiniLedger:
    def __init__(self, n):
        self._credits = [0.0] * n

    def record_from(self, peer, amount):
        self._credits[peer] += amount


def update(n):
    ledger = MiniLedger(n)
    amount = scale(jitter())
    ledger.record_from(0, amount)
    return ledger
