"""Fixture: environment and wall-clock values keying RNG streams.

``det-taint-seed`` must catch both shapes: an env read keying a
KeyedStream, and a wall-clock value seeding a numpy Generator.
"""

import numpy as np

from ..core.flow_helpers import env_knob, jitter
from ..security.prng import KeyedStream


def stream_from_env():
    key = env_knob("REPRO_KEY").encode()
    return KeyedStream(key)


def rng_from_time():
    return np.random.default_rng(jitter())
