"""Planted span-event schema violations; tests pin these exact lines."""

from ..obs.events import EV_SPAN_END, EV_SPAN_START


class _Buffer:
    enabled = False

    def emit(self, name, **fields):
        pass


_TRACER = _Buffer()


def emit_sites():
    _TRACER.emit(  # line 17: trace-fields (span start missing parent_id,
        EV_SPAN_START, trace_id=1, span_id=2, op="x", attrs={}, status="ok"
    )  # smuggling a span-end status field)
    _TRACER.emit("fix.span.oops", trace_id=1)  # line 20: trace-unknown-event
    _TRACER.emit(  # correct span.start contract: clean
        EV_SPAN_START, trace_id=1, span_id=2, parent_id=0, op="x", attrs={}
    )
    _TRACER.emit(  # correct span.end contract: clean
        EV_SPAN_END, trace_id=1, span_id=2, op="x", status="ok"
    )
