"""Planted trace-schema violations; tests pin these exact lines."""

from ..obs.events import EV_BARE, EV_GOOD


class _Buffer:
    enabled = False

    def emit(self, name, **fields):
        pass


_TRACER = _Buffer()


def emit_sites():
    _TRACER.emit("fix.unknown", a=1)  # line 17: trace-unknown-event
    _TRACER.emit(EV_GOOD, a=1, c=2)  # line 18: trace-fields
    _TRACER.emit(EV_MISSING, a=1)  # line 19: trace-unknown-event (undefined)
    _TRACER.emit(EV_GOOD, a=1, b=2)  # declared name, declared fields: clean
    _TRACER.emit(EV_BARE, anything=1)  # no field contract declared: clean
    _TRACER.emit("fix.good", a=1, b=2)  # literal spelling of declared event
