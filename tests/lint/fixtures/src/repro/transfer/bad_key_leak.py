"""Fixture: key material crossing the entropy boundary.

``sec-key-taint`` must see ``self.key`` (set from ``derive_key`` in the
constructor) leak into a trace event and a ``to_dict`` payload from
*other* methods — the cross-method attribute channel.
"""

from ..security.prng import derive_key


class _Tracer:
    def emit(self, name, **fields):
        pass


_TRACER = _Tracer()


class Handshake:
    def __init__(self, secret):
        self.key = derive_key(secret, "handshake")

    def announce(self):
        _TRACER.emit("fix.bare", key=self.key.hex())

    def to_dict(self):
        return {"key": self.key}
