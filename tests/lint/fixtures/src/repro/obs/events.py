"""Miniature event taxonomy for the lint fixtures.

The engine treats the nearest ``fixtures`` directory as a project root,
so this file plays the role ``src/repro/obs/events.py`` plays in the
real tree: it declares the event vocabulary the trace rules check
fixture emit sites against.
"""

EV_GOOD = "fix.good"
EV_BARE = "fix.bare"

EVENT_FIELDS = {
    "fix.good": ("a", "b"),
}
