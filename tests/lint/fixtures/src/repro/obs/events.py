"""Miniature event taxonomy for the lint fixtures.

The engine treats the nearest ``fixtures`` directory as a project root,
so this file plays the role ``src/repro/obs/events.py`` plays in the
real tree: it declares the event vocabulary the trace rules check
fixture emit sites against.
"""

EV_GOOD = "fix.good"
EV_BARE = "fix.bare"
EV_SPAN_START = "fix.span.start"
EV_SPAN_END = "fix.span.end"

EVENT_FIELDS = {
    "fix.good": ("a", "b"),
    "fix.span.start": ("trace_id", "span_id", "parent_id", "op", "attrs"),
    "fix.span.end": ("trace_id", "span_id", "op", "status"),
}
