"""Planted sim-shared-state violations (line numbers are pinned)."""
from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def leak_segment(n):
    shm = shared_memory.SharedMemory(create=True, size=n)  # line 7
    other = SharedMemory(name="repro-sim")  # line 8
    view = shm.buf  # line 9
    return other, view


def allowed_segment(n):
    shm = SharedMemory(create=True, size=n)  # repro: allow[sim-shared-state]
    return shm.buf  # repro: allow[sim-shared-state]
