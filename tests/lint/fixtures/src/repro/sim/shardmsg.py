"""Fixture message layer: SlotVectors views plus a leaked ``.buf``.

Mirrors the real ``repro.sim.shardmsg`` closely enough for the
``procs-writer-discipline`` field discovery, and plants one violation:
``raw_view`` returns the raw shared-memory view instead of keeping it
behind an ndarray.
"""

from multiprocessing import shared_memory

import numpy as np


class SlotVectors:
    def __init__(self, n):
        self.n = n
        self._shm = shared_memory.SharedMemory(create=True, size=25 * n)
        buf = self._shm.buf
        self.capacities = np.ndarray((n,), dtype=np.float64, buffer=buf)
        self.declared = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=8 * n)
        self.rates = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=16 * n)
        self.requesting = np.ndarray((n,), dtype=bool, buffer=buf, offset=24 * n)

    def raw_view(self):
        return self._shm.buf
