"""Planted density violations; tests pin these exact lines."""

import numpy as np


def dense_state(n):
    credit = np.zeros((n, n))  # line 7: sim-dense-alloc
    pending = np.empty(shape=(n, n))  # line 8: sim-dense-alloc
    mask = np.full((n, n), 0.5)  # line 9: sim-dense-alloc
    return credit, pending, mask


def fine_forms(n, m, rows):
    rectangular = np.zeros((n, m))
    literal = np.ones((3, 3))
    vector = np.empty(n)
    active = np.zeros((len(rows), len(rows) + 1))
    reference = np.zeros((n, n))  # repro: allow[sim-dense-alloc] fixture
    return rectangular, literal, vector, active, reference
