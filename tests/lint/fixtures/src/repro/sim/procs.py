"""Fixture procs engine: planted writer-discipline violations.

Two bugs for ``procs-writer-discipline``: the coordinator writes the
worker-owned ``capacities`` field after the alloc broadcast (second
writer role), and the worker writes ``requesting`` with a full ``[:]``
slice (stomping other shards' cells).
"""

from .shardmsg import SlotVectors


class ProcsCoordinator:
    def __init__(self, n):
        self.vec = SlotVectors(n)
        self._conns = []

    def _broadcast(self, msg):
        for conn in self._conns:
            conn.send(msg)

    def step(self, t):
        self._broadcast(("sample", t))
        self._broadcast(("alloc", t))
        self.vec.rates[:4] = 0.0
        self.vec.capacities[0] = 1.0


class _ShardWorker:
    def __init__(self, vec, lo, hi):
        self.vec = vec
        self.lo = lo
        self.hi = hi

    def sample(self, t):
        self.vec.capacities[self.lo : self.hi] = 1.0
        self.vec.requesting[:] = True


def _worker_main(vec, conn):
    shard = _ShardWorker(vec, 0, 4)
    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == "sample":
            shard.sample(msg[1])
            conn.send(("ok",))
        elif cmd == "stop":
            return
