"""Every rule family detects its planted fixture violations at the
exact file:line the fixture pins (the ISSUE's acceptance criterion)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"


def findings_for(relpath: str):
    path = FIXTURES / relpath
    assert path.is_file(), path
    report = run_lint([path])
    return [(f.line, f.rule) for f in report.findings], report


class TestDeterminismFamily:
    def test_planted_violations(self):
        got, report = findings_for("core/bad_determinism.py")
        assert (4, "det-stdlib-random") in got
        assert (11, "det-wallclock") in got
        assert (15, "det-urandom") in got
        assert (19, "det-unseeded-rng") in got
        assert (23, "det-unseeded-rng") in got
        for f in report.findings:
            assert f.path.endswith("bad_determinism.py")

    def test_no_extra_rules_fire(self):
        got, _ = findings_for("core/bad_determinism.py")
        assert {rule for _, rule in got} == {
            "det-stdlib-random",
            "det-wallclock",
            "det-urandom",
            "det-unseeded-rng",
        }


class TestFloatSafetyFamily:
    def test_planted_violations(self):
        got, _ = findings_for("core/bad_float.py")
        assert (7, "float-div-before-mul") in got
        assert (11, "float-ledger-dtype") in got
        assert (16, "float-bare-sum") in got

    def test_safe_forms_stay_clean(self):
        got, _ = findings_for("core/bad_float.py")
        # fine_forms() spans lines 19-25: multiply-before-divide, an
        # explicit ratio, a literal divisor, a scalar generator sum and
        # a default-dtype ledger must none of them fire.
        assert not [line for line, _ in got if line >= 19]


class TestDensityFamily:
    def test_planted_violations(self):
        got, _ = findings_for("sim/bad_density.py")
        assert (7, "sim-dense-alloc") in got
        assert (8, "sim-dense-alloc") in got
        assert (9, "sim-dense-alloc") in got

    def test_safe_and_allowed_forms_stay_clean(self):
        # fine_forms() spans lines 13-19: rectangular, literal-square,
        # 1-D, distinct-dims and allow-annotated allocations are all ok.
        got, _ = findings_for("sim/bad_density.py")
        assert not [line for line, _ in got if line >= 13]

    def test_rule_scoped_to_sim_layer(self):
        # The same (n, n) allocation in core/ (the reference rules are
        # allowed to stay textbook-dense) must not fire this rule.
        got, _ = findings_for("core/bad_float.py")
        assert "sim-dense-alloc" not in {rule for _, rule in got}


class TestTraceFamily:
    def test_planted_violations(self):
        got, _ = findings_for("transfer/bad_trace.py")
        assert (17, "trace-unknown-event") in got
        assert (18, "trace-fields") in got
        assert (19, "trace-unknown-event") in got

    def test_declared_sites_clean(self):
        got, _ = findings_for("transfer/bad_trace.py")
        assert not [line for line, _ in got if line >= 20]

    def test_field_mismatch_message_names_both_directions(self):
        path = FIXTURES / "transfer" / "bad_trace.py"
        report = run_lint([path])
        (msg,) = [f.message for f in report.findings if f.rule == "trace-fields"]
        assert "missing ['b']" in msg and "unexpected ['c']" in msg


class TestSpanTraceFamily:
    """Span events obey the same EVENT_FIELDS contract as flat events."""

    def test_span_field_mismatch_detected(self):
        got, _ = findings_for("transfer/bad_span_trace.py")
        assert (17, "trace-fields") in got
        assert (20, "trace-unknown-event") in got

    def test_mismatch_names_the_span_fields(self):
        path = FIXTURES / "transfer" / "bad_span_trace.py"
        report = run_lint([path])
        (msg,) = [f.message for f in report.findings if f.rule == "trace-fields"]
        assert "missing ['parent_id']" in msg
        assert "unexpected ['status']" in msg

    def test_contract_conforming_span_emits_clean(self):
        got, _ = findings_for("transfer/bad_span_trace.py")
        assert not [line for line, _ in got if line >= 21]


class TestApiFamily:
    def test_planted_violations(self):
        got, _ = findings_for("core/bad_api.py")
        assert (6, "api-batched-scalar-pair") in got
        assert (24, "api-mutable-default") in got
        assert (29, "api-mutable-default") in got

    def test_protocol_and_paired_classes_exempt(self):
        got, _ = findings_for("core/bad_api.py")
        pair_lines = [line for line, rule in got if rule == "api-batched-scalar-pair"]
        assert pair_lines == [6]


class TestSharedStateFamily:
    def test_planted_violations(self):
        got, _ = findings_for("sim/bad_shared_state.py")
        assert (7, "sim-shared-state") in got
        assert (8, "sim-shared-state") in got
        assert (9, "sim-shared-state") in got

    def test_allow_comment_suppresses(self):
        # allowed_segment() spans lines 13-15: both escapes must hold.
        got, _ = findings_for("sim/bad_shared_state.py")
        assert not [line for line, _ in got if line >= 13]

    def test_message_layer_is_exempt(self):
        from repro.sim import shardmsg

        report = run_lint([Path(shardmsg.__file__)])
        assert [f for f in report.findings if f.rule == "sim-shared-state"] == []

    def test_procs_engine_itself_is_clean(self):
        from repro.sim import procs

        report = run_lint([Path(procs.__file__)])
        assert [f for f in report.findings if f.rule == "sim-shared-state"] == []


class TestScoping:
    def test_det_rules_do_not_apply_outside_scoped_layers(self, tmp_path):
        # The same violations in an unscoped location (no src/repro/...
        # prefix under its root) must stay silent for scoped families.
        mod = tmp_path / "fixtures" / "scripts" / "tool.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        report = run_lint([mod])
        assert report.findings == []

    def test_fixture_dirs_are_skipped_on_directory_walks(self):
        report = run_lint([Path(__file__).parent])
        bad = [f for f in report.findings if "fixtures" in f.path]
        assert bad == []


class TestSyntaxRule:
    def test_unparsable_file_is_a_finding_not_a_crash(self, tmp_path):
        mod = tmp_path / "broken.py"
        mod.write_text("def f(:\n")
        report = run_lint([mod])
        assert [f.rule for f in report.findings] == ["lint-syntax"]
        assert report.exit_code() == 1


class TestRuleMetadata:
    def test_every_rule_has_id_rationale_and_registry_entry(self):
        from repro.lint import RULES
        from repro.lint.engine import _ensure_rules_loaded

        _ensure_rules_loaded()
        assert len(RULES) >= 11
        for rid, rule in RULES.items():
            assert rule.id == rid
            assert rule.rationale.strip(), rid

    def test_rule_filter_runs_only_selected(self):
        path = FIXTURES / "core" / "bad_determinism.py"
        report = run_lint([path], rule_ids=["det-wallclock"])
        assert {f.rule for f in report.findings} == {"det-wallclock"}

    def test_unknown_rule_filter_raises(self):
        from repro.lint import LintError

        with pytest.raises(LintError, match="unknown rule id"):
            run_lint([FIXTURES], rule_ids=["nope"])
