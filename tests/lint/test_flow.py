"""Flow-sensitive analysis: call graph construction, golden taint
paths per rule family, writer discipline, the seeded-mutation gates on
real sources, the unified invocation root, and the flow CLI surface."""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import run_lint
from repro.lint.callgraph import CallGraph
from repro.lint.engine import resolve_invocation_root

REPO = Path(__file__).resolve().parents[2]
FIXROOT = Path(__file__).parent / "fixtures"
FIXTURES = FIXROOT / "src" / "repro"


def flow_report(relpath: str):
    path = FIXTURES / relpath
    assert path.is_file(), path
    return run_lint([path], flow=True)


@pytest.fixture(scope="module")
def graph() -> CallGraph:
    return CallGraph.build(FIXROOT)


class TestCallGraph:
    def test_cross_module_import_edges(self, graph):
        edges = dict(graph.edges)["repro.core.bad_taint_ledger.update"]
        callees = {callee for callee, _ in edges}
        assert "repro.core.flow_helpers.jitter" in callees
        assert "repro.core.flow_helpers.scale" in callees

    def test_attribute_dispatch_through_local_type(self, graph):
        # ledger = MiniLedger(n); ledger.record_from(...) resolves to the
        # method because the constructor assignment types the local.
        edges = graph.edges["repro.core.bad_taint_ledger.update"]
        assert ("repro.core.bad_taint_ledger.MiniLedger.record_from", 22) in edges

    def test_self_method_dispatch(self, graph):
        edges = graph.edges["repro.sim.procs.ProcsCoordinator.step"]
        callees = {callee for callee, _ in edges}
        assert "repro.sim.procs.ProcsCoordinator._broadcast" in callees

    def test_call_cycle_is_representable(self, graph):
        assert "repro.core.flow_helpers.cyc_b" in graph.callers_of(
            "repro.core.flow_helpers.cyc_a"
        )
        assert "repro.core.flow_helpers.cyc_a" in graph.callers_of(
            "repro.core.flow_helpers.cyc_b"
        )

    def test_serialization_round_trip(self, graph):
        clone = CallGraph.from_dict(graph.to_dict())
        assert set(clone.functions) == set(graph.functions)
        assert clone.edges == graph.edges
        assert clone.digests() == graph.digests()

    def test_disk_cache_hit_and_digest_invalidation(self, tmp_path):
        proj = tmp_path / "proj"
        shutil.copytree(FIXROOT / "src", proj / "src")
        cache = tmp_path / "cache"
        g1 = CallGraph.load_or_build(proj, cache)
        assert list(cache.glob("callgraph-*.json")), "disk cache not written"
        assert "repro.core.flow_helpers.extra" not in g1.functions
        helpers = proj / "src" / "repro" / "core" / "flow_helpers.py"
        helpers.write_text(
            helpers.read_text(encoding="utf-8") + "\n\ndef extra():\n    return 0\n",
            encoding="utf-8",
        )
        g2 = CallGraph.load_or_build(proj, cache)
        assert "repro.core.flow_helpers.extra" in g2.functions


class TestDetTaintLedger:
    def test_golden_path(self):
        report = flow_report("core/bad_taint_ledger.py")
        assert {f.rule for f in report.findings} == {"det-taint-ledger"}
        assert {f.line for f in report.findings} == {22}
        store = next(f for f in report.findings if "_credits" in f.message)
        golden = [
            "flow_helpers.py:14: wall-clock read",
            "bad_taint_ledger.py:21: returned from jitter()",
            "bad_taint_ledger.py:21: returned from scale()",
            "bad_taint_ledger.py:22: passed into record_from()",
            "bad_taint_ledger.py:15: enters record_from() as parameter 'amount'",
            "bad_taint_ledger.py:16: nondeterministic value stored into credit",
        ]
        for want, got in zip(golden, store.trace):
            assert want in got, (want, got)
        assert len(store.trace) == len(golden)

    def test_sink_call_also_reported(self):
        report = flow_report("core/bad_taint_ledger.py")
        assert any(
            "reaches ledger state via" in f.message for f in report.findings
        )

    def test_clean_without_flow(self):
        report = run_lint([FIXTURES / "core" / "bad_taint_ledger.py"])
        assert not report.findings
        assert "det-taint-ledger" not in report.rules_run


class TestDetTaintSeed:
    def test_env_to_keyed_stream(self):
        report = flow_report("rlnc/bad_taint_seed.py")
        f = next(x for x in report.findings if x.line == 15)
        assert f.rule == "det-taint-seed"
        assert "KeyedStream" in f.message
        assert any("environment variable read" in s for s in f.trace)
        assert any("flow_helpers.py:22" in s for s in f.trace)

    def test_wallclock_to_default_rng(self):
        report = flow_report("rlnc/bad_taint_seed.py")
        f = next(x for x in report.findings if x.line == 19)
        assert f.rule == "det-taint-seed"
        assert "numpy.random.default_rng" in f.message
        assert any("wall-clock read" in s for s in f.trace)

    def test_no_other_rules_fire(self):
        report = flow_report("rlnc/bad_taint_seed.py")
        assert {f.rule for f in report.findings} == {"det-taint-seed"}


class TestSecKeyTaint:
    def test_cross_method_attribute_leaks(self):
        report = flow_report("transfer/bad_key_leak.py")
        assert {f.rule for f in report.findings} == {"sec-key-taint"}
        assert {f.line for f in report.findings} == {24, 27}

    def test_trace_roots_at_derivation(self):
        report = flow_report("transfer/bad_key_leak.py")
        for f in report.findings:
            assert any(
                "bad_key_leak.py:21: secret key material derived here" in s
                for s in f.trace
            ), f.trace

    def test_sink_kinds(self):
        report = flow_report("transfer/bad_key_leak.py")
        messages = sorted(f.message for f in report.findings)
        assert any("trace event" in m for m in messages)
        assert any("to_dict payload" in m for m in messages)


class TestWriterDiscipline:
    def test_two_writer_roles_flag_both_sites(self):
        report = flow_report("sim/procs.py")
        ties = [f for f in report.findings if "2 writer roles" in f.message]
        assert {(f.line, f.rule) for f in ties} == {
            (25, "procs-writer-discipline"),
            (35, "procs-writer-discipline"),
        }
        # Every tie finding carries the full write-site inventory.
        for f in ties:
            assert any("procs.py:25" in s and "coordinator" in s for s in f.trace)
            assert any("procs.py:35" in s and "worker" in s for s in f.trace)
            assert any("[phase alloc]" in s for s in f.trace)
            assert any("[phase sample]" in s for s in f.trace)

    def test_worker_full_slice_write(self):
        report = flow_report("sim/procs.py")
        f = next(x for x in report.findings if x.line == 36)
        assert f.rule == "procs-writer-discipline"
        assert "shard's slice" in f.message

    def test_single_writer_fields_stay_clean(self):
        report = flow_report("sim/procs.py")
        assert not any("'rates'" in f.message for f in report.findings)
        assert not any("'declared'" in f.message for f in report.findings)

    def test_buf_escape(self):
        report = flow_report("sim/shardmsg.py")
        assert [(f.line, f.rule) for f in report.findings] == [
            (25, "procs-writer-discipline")
        ]
        assert ".buf" in report.findings[0].message


class TestMutationGates:
    """The acceptance mutations: seed each bug into a copy of the real
    sources and assert the flow gate catches it."""

    @pytest.fixture()
    def repo_copy(self, tmp_path):
        proj = tmp_path / "proj"
        proj.mkdir()
        shutil.copytree(
            REPO / "src",
            proj / "src",
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        shutil.copy(REPO / "pyproject.toml", proj / "pyproject.toml")
        return proj

    def _mutate(self, path: Path, old: str, new: str) -> None:
        text = path.read_text(encoding="utf-8")
        assert old in text, f"mutation anchor missing in {path}"
        path.write_text(text.replace(old, new, 1), encoding="utf-8")

    def test_wallclock_seed_in_engine_is_caught(self, repo_copy):
        engine = repo_copy / "src" / "repro" / "sim" / "engine.py"
        self._mutate(engine, "_LazyRngs(seed)", "_LazyRngs(time.time_ns())")
        report = run_lint([engine], flow=True)
        hits = [f for f in report.findings if f.rule == "det-taint-seed"]
        assert hits, [f.message for f in report.findings]
        assert any("'seed' parameter" in f.message for f in hits)

    def test_second_slotvectors_writer_is_caught(self, repo_copy):
        procs = repo_copy / "src" / "repro" / "sim" / "procs.py"
        self._mutate(
            procs,
            "self.vec.rates[:A] = M.sum(axis=0)",
            "self.vec.rates[:A] = M.sum(axis=0)\n"
            "            self.vec.capacities[0] = 0.0",
        )
        report = run_lint([procs], flow=True)
        hits = [
            f for f in report.findings if f.rule == "procs-writer-discipline"
        ]
        assert len(hits) >= 2, [f.message for f in report.findings]
        assert any("'capacities'" in f.message for f in hits)

    def test_unmutated_copy_is_clean(self, repo_copy):
        sim = repo_copy / "src" / "repro" / "sim"
        report = run_lint([sim / "engine.py", sim / "procs.py"], flow=True)
        assert not report.findings, [f.message for f in report.findings]


class TestInvocationRoot:
    def test_mixed_paths_resolve_to_repo_root(self):
        root = resolve_invocation_root(
            [REPO / "src" / "repro" / "cli.py", REPO / "tests" / "lint" / "test_rules.py"]
        )
        assert root == REPO

    def test_fixture_paths_do_not_drag_the_root(self):
        # Fixture files keep their own root; they must not pull the
        # shared invocation root down to a common ancestor.
        root = resolve_invocation_root(
            [
                FIXTURES / "core" / "bad_taint_ledger.py",
                REPO / "src" / "repro" / "cli.py",
            ]
        )
        assert root == REPO

    def test_run_from_subdirectory(self, monkeypatch):
        # Satellite (b): linting from a subdirectory with relative paths
        # must resolve every file against the one invocation root.
        monkeypatch.chdir(REPO / "src")
        report = run_lint(
            [
                Path("repro") / "cli.py",
                Path("..") / "tests" / "lint" / "fixtures" / "src" / "repro"
                / "core" / "bad_taint_ledger.py",
            ],
            flow=True,
        )
        assert {f.rule for f in report.findings} == {"det-taint-ledger"}


class TestFlowCli:
    BAD_LEDGER = str(FIXTURES / "core" / "bad_taint_ledger.py")

    def test_flow_flag_gates_the_rules(self, capsys):
        assert main(["lint", self.BAD_LEDGER]) == 0
        capsys.readouterr()
        assert main(["lint", "--flow", self.BAD_LEDGER]) == 1
        assert "det-taint-ledger" in capsys.readouterr().out

    def test_no_flow_wins(self, capsys):
        assert main(["lint", "--flow", "--no-flow", self.BAD_LEDGER]) == 0

    def test_explain_prints_the_taint_path(self, capsys):
        assert main(["lint", "--explain", "det-taint-ledger", self.BAD_LEDGER]) == 1
        out = capsys.readouterr().out
        assert "wall-clock read" in out
        assert "flow_helpers.py:14" in out
        assert "enters record_from() as parameter 'amount'" in out

    def test_explain_clean_rule_exits_zero(self, capsys):
        assert main(["lint", "--explain", "sec-key-taint", self.BAD_LEDGER]) == 0

    def test_cache_dir_persists_graph(self, tmp_path, capsys):
        cache = tmp_path / "cg"
        assert (
            main(["lint", "--flow", "--cache-dir", str(cache), self.BAD_LEDGER])
            == 1
        )
        assert list(cache.glob("callgraph-*.json"))

    def test_suppression_silences_flow_finding(self, tmp_path):
        proj = tmp_path / "proj"
        shutil.copytree(FIXROOT / "src", proj / "src")
        (proj / "pyproject.toml").write_text("[project]\nname='fx'\n")
        target = proj / "src" / "repro" / "core" / "bad_taint_ledger.py"
        text = target.read_text(encoding="utf-8")
        text = text.replace(
            "ledger.record_from(0, amount)",
            "ledger.record_from(0, amount)  # repro: allow[det-taint-ledger] audited",
        )
        target.write_text(text, encoding="utf-8")
        report = run_lint([target], flow=True)
        assert not report.findings


class TestChangedFiles:
    def _git(self, *args: str, cwd: Path) -> None:
        subprocess.run(
            [
                "git",
                "-c",
                "user.email=lint@test",
                "-c",
                "user.name=lint",
                *args,
            ],
            cwd=cwd,
            check=True,
            capture_output=True,
        )

    @pytest.fixture()
    def git_repo(self, tmp_path):
        repo = tmp_path / "repo"
        mod = repo / "src" / "repro" / "core" / "mod.py"
        mod.parent.mkdir(parents=True)
        (repo / "pyproject.toml").write_text("[project]\nname='fx'\n")
        mod.write_text("X = 1\n")
        self._git("init", "-q", cwd=repo)
        self._git("add", "-A", cwd=repo)
        self._git("commit", "-q", "-m", "seed", cwd=repo)
        return repo

    def test_changed_picks_up_modified_file(self, git_repo, monkeypatch, capsys):
        mod = git_repo / "src" / "repro" / "core" / "mod.py"
        mod.write_text("import time\n\nT = time.time()\n")
        monkeypatch.chdir(git_repo)
        assert main(["lint", "--changed", "HEAD"]) == 1
        assert "det-wallclock" in capsys.readouterr().out

    def test_changed_nothing_exits_zero(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        assert main(["lint", "--changed", "HEAD"]) == 0
        assert "no python files changed" in capsys.readouterr().out


class TestRepoFlowClean:
    def test_real_sources_pass_the_flow_gate(self):
        report = run_lint([REPO / "src"], flow=True)
        flow_rules = {"det-taint-ledger", "det-taint-seed", "sec-key-taint",
                      "procs-writer-discipline"}
        assert not [f for f in report.findings if f.rule in flow_rules], [
            (f.path, f.line, f.message)
            for f in report.findings
            if f.rule in flow_rules
        ]
        assert flow_rules <= set(report.rules_run)
