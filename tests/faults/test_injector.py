"""Unit tests for the fault-injecting serving-session wrapper."""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultyServingSession, PeerFault
from repro.rlnc import CodingParams, FileEncoder
from repro.security import DigestStore, generate_keypair
from repro.storage import MessageStore
from repro.transfer import DownloadSession, ProtocolError, ServingSession, SessionCrashed

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0x77


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=512, seed=5)


@pytest.fixture()
def setup(rng, keys):
    """One honest serving peer plus the digest store guarding its file."""
    data = rng.bytes(500)
    digests = DigestStore()
    encoder = FileEncoder(PARAMS, b"s", file_id=FILE_ID)
    encoded = encoder.encode_bundles(data, n_peers=1, digest_store=digests)
    store = MessageStore()
    store.add_messages(encoded.bundles[0])
    return data, store, digests


def wrapped(store, keys, faults, seed=0, handshake=True):
    plan = FaultPlan(seed=seed, faults={0: faults})
    session = FaultyServingSession(
        ServingSession(store, keys.public), plan.faults_for(0), plan.rng_for(0), peer=0
    )
    if handshake:
        DownloadSession(keys).handshake(session, FILE_ID)
    return session


class TestRefuse:
    def test_auth_never_succeeds(self, setup, keys):
        _, store, _ = setup
        session = wrapped(store, keys, PeerFault("refuse"), handshake=False)
        with pytest.raises(ProtocolError):
            DownloadSession(keys).handshake(session, FILE_ID)
        assert not session.authenticated


class TestCrash:
    def test_crash_at_byte_raises_with_prior_messages(self, setup, keys):
        _, store, digests = setup
        wire = store.messages(FILE_ID)[0].wire_size()
        session = wrapped(store, keys, PeerFault("crash", at_byte=wire * 2.5))
        delivered = session.serve(wire * 2)  # below the threshold
        assert len(delivered) == 2
        with pytest.raises(SessionCrashed) as exc_info:
            session.serve(wire * 2)
        # The budget crossing the crash byte still yields the messages
        # completed before the cut (here: half a message -> none extra).
        assert isinstance(exc_info.value.delivered, tuple)
        assert not session.active

    def test_crashed_session_stays_dead(self, setup, keys):
        _, store, _ = setup
        session = wrapped(store, keys, PeerFault("crash", at_byte=0))
        with pytest.raises(SessionCrashed):
            session.serve(1000)
        with pytest.raises(SessionCrashed):
            session.serve(1000)


class TestStall:
    def test_stall_window_serves_nothing(self, setup, keys):
        _, store, _ = setup
        wire = store.messages(FILE_ID)[0].wire_size()
        session = wrapped(store, keys, PeerFault("stall", at_slot=1, duration=2))
        assert len(session.serve(wire)) == 1  # slot 0: healthy
        assert session.serve(wire) == []  # slot 1: stalled
        assert session.serve(wire) == []  # slot 2: stalled
        assert len(session.serve(wire)) == 1  # slot 3: recovered

    def test_stalled_budget_buys_no_stream_progress(self, setup, keys):
        _, store, _ = setup
        wire = store.messages(FILE_ID)[0].wire_size()
        session = wrapped(store, keys, PeerFault("stall", at_slot=0, duration=1))
        session.serve(wire * 100)  # stalled: nothing flows, no carryover
        assert session.messages_sent == 0
        assert len(session.serve(wire)) == 1


class TestPollution:
    def test_polluted_messages_fail_digest_verification(self, setup, keys):
        _, store, digests = setup
        session = wrapped(store, keys, PeerFault("pollute"))
        delivered = session.serve(10_000_000)
        assert delivered
        for data in delivered:
            m = data.message
            assert not digests.verify(m.file_id, m.message_id, m.payload_bytes())

    def test_pollution_keeps_valid_header(self, setup, keys):
        _, store, _ = setup
        originals = {m.message_id: m for m in store.messages(FILE_ID)}
        session = wrapped(store, keys, PeerFault("pollute"))
        for data in session.serve(10_000_000):
            m = data.message
            assert m.file_id == FILE_ID
            assert m.message_id in originals
            assert m.m == PARAMS.m and m.p == PARAMS.p
            assert int(np.asarray(m.payload).max()) < (1 << PARAMS.p)

    def test_corruption_alters_exactly_one_symbol(self, setup, keys):
        _, store, digests = setup
        originals = {m.message_id: np.asarray(m.payload) for m in store.messages(FILE_ID)}
        session = wrapped(store, keys, PeerFault("corrupt"))
        for data in session.serve(10_000_000):
            diff = np.asarray(data.message.payload) != originals[data.message.message_id]
            assert int(diff.sum()) == 1

    def test_partial_rate_pollutes_some(self, setup, keys):
        _, store, digests = setup
        session = wrapped(store, keys, PeerFault("pollute", rate=0.5), seed=11)
        delivered = session.serve(10_000_000)
        bad = sum(
            not digests.verify(
                d.message.file_id, d.message.message_id, d.message.payload_bytes()
            )
            for d in delivered
        )
        assert 0 < bad < len(delivered)

    def test_injection_is_bit_stable(self, setup, keys):
        _, store, _ = setup

        def payloads():
            session = wrapped(store, keys, PeerFault("pollute"), seed=42)
            return [np.asarray(d.message.payload).copy() for d in session.serve(10_000_000)]

        for a, b in zip(payloads(), payloads()):
            np.testing.assert_array_equal(a, b)


class TestDelegation:
    def test_healthy_passthrough_counters(self, setup, keys):
        _, store, _ = setup
        session = wrapped(store, keys, PeerFault("stall", at_slot=999))
        inner = ServingSession(store, keys.public)
        DownloadSession(keys).handshake(inner, FILE_ID)
        wire = store.messages(FILE_ID)[0].wire_size()
        a = session.serve(wire * 3)
        b = inner.serve(wire * 3)
        assert [d.message.message_id for d in a] == [d.message.message_id for d in b]
        assert session.bytes_sent == inner.bytes_sent
        assert session.messages_sent == inner.messages_sent


class TestChurnKinds:
    def test_depart_kills_the_session_for_good(self, setup, keys):
        _, store, _ = setup
        session = wrapped(store, keys, PeerFault("depart", at_slot=2))
        wire = store.messages(FILE_ID)[0].wire_size()
        assert session.serve(wire)  # slot 0: still present
        assert session.serve(wire)  # slot 1
        with pytest.raises(SessionCrashed, match="departed at slot 2"):
            session.serve(wire)
        assert not session.active
        with pytest.raises(SessionCrashed):
            session.serve(wire)  # stays dead

    def test_rejoin_serves_nothing_until_arrival(self, setup, keys):
        _, store, _ = setup
        session = wrapped(store, keys, PeerFault("rejoin", at_slot=3))
        wire = store.messages(FILE_ID)[0].wire_size()
        for _ in range(3):
            assert session.serve(wire) == []  # absent, but survivable
        assert session.active
        delivered = session.serve(wire)
        assert len(delivered) == 1  # back with stored messages intact

    def test_churn_window_is_a_survivable_outage(self, setup, keys):
        _, store, _ = setup
        session = wrapped(store, keys, PeerFault("churn", at_slot=1, duration=2))
        wire = store.messages(FILE_ID)[0].wire_size()
        first = session.serve(wire)
        assert len(first) == 1  # slot 0: before the window
        assert session.serve(wire) == []  # slots 1-2: gone
        assert session.serve(wire) == []
        assert session.active
        back = session.serve(wire)
        assert len(back) == 1
        # The cursor did not advance during the outage: delivery resumes
        # exactly where it left off.
        assert back[0].message.message_id == first[0].message.message_id + 1
