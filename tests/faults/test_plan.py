"""Unit tests for FaultPlan / PeerFault parsing and derivations."""

import numpy as np
import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpecError, PeerFault

SPEC = "seed=7;0:pollute;1:crash@1500;2:stall@10+6;3:refuse;4:corrupt@0.3"


class TestPeerFault:
    def test_kinds_are_validated(self):
        with pytest.raises(FaultSpecError):
            PeerFault("meltdown")
        for kind in FAULT_KINDS:
            PeerFault(kind)  # all documented kinds construct

    def test_parameter_validation(self):
        with pytest.raises(FaultSpecError):
            PeerFault("crash", at_byte=-1)
        with pytest.raises(FaultSpecError):
            PeerFault("stall", at_slot=-1)
        with pytest.raises(FaultSpecError):
            PeerFault("stall", duration=0)
        with pytest.raises(FaultSpecError):
            PeerFault("pollute", rate=0.0)
        with pytest.raises(FaultSpecError):
            PeerFault("corrupt", rate=1.5)


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(SPEC)
        assert plan.seed == 7
        assert plan.peers == (0, 1, 2, 3, 4)
        assert plan.faults_for(0) == (PeerFault("pollute"),)
        assert plan.faults_for(1) == (PeerFault("crash", at_byte=1500),)
        assert plan.faults_for(2) == (PeerFault("stall", at_slot=10, duration=6),)
        assert plan.faults_for(3) == (PeerFault("refuse"),)
        assert plan.faults_for(4) == (PeerFault("corrupt", rate=0.3),)
        assert plan.faults_for(99) == ()

    def test_round_trip(self):
        plan = FaultPlan.parse(SPEC)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_multiple_faults_per_peer(self):
        plan = FaultPlan.parse("0:pollute@0.5;0:crash@2000")
        assert len(plan.faults_for(0)) == 2

    def test_later_seed_entry_wins(self):
        # The CLI prepends its own seed; an explicit seed= in the user's
        # spec must override it.
        assert FaultPlan.parse("seed=1;seed=9;0:refuse").seed == 9

    def test_empty_spec_is_empty_plan(self):
        plan = FaultPlan.parse("")
        assert plan.peers == ()
        assert len(plan) == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "nonsense",
            "x:refuse",
            "-1:refuse",
            "0:meltdown",
            "0:crash@abc",
            "0:stall@x+y",
            "0:refuse@1",
            "seed=abc;0:refuse",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)


class TestDeterminism:
    def test_rng_depends_on_seed_and_peer(self):
        plan = FaultPlan(seed=3)
        a = plan.rng_for(0).integers(0, 1 << 30, size=8)
        b = plan.rng_for(0).integers(0, 1 << 30, size=8)
        c = plan.rng_for(1).integers(0, 1 << 30, size=8)
        d = FaultPlan(seed=4).rng_for(0).integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)


class TestCapacityProfile:
    def test_refuse_is_never_online(self):
        plan = FaultPlan(seed=0, faults={0: PeerFault("refuse")})
        assert plan.capacity_profile(0, 512.0, 100) == [(0, 0.0)]

    def test_crash_goes_dark_for_good(self):
        # 512 kbps = 64000 B/slot; crash at byte 128000 -> offline from slot 2.
        plan = FaultPlan(seed=0, faults={0: PeerFault("crash", at_byte=128_000)})
        assert plan.capacity_profile(0, 512.0, 100) == [(0, 512.0), (2, 0.0)]

    def test_stall_is_a_temporary_outage(self):
        plan = FaultPlan(
            seed=0, faults={0: PeerFault("stall", at_slot=10, duration=5)}
        )
        assert plan.capacity_profile(0, 512.0, 100) == [
            (0, 512.0),
            (10, 0.0),
            (15, 512.0),
        ]

    def test_pollute_leaves_capacity_unchanged(self):
        plan = FaultPlan(seed=0, faults={0: PeerFault("pollute")})
        assert plan.capacity_profile(0, 512.0, 100) is None

    def test_overlapping_windows_merge(self):
        plan = FaultPlan(
            seed=0,
            faults={
                0: [
                    PeerFault("stall", at_slot=10, duration=10),
                    PeerFault("stall", at_slot=15, duration=10),
                ]
            },
        )
        assert plan.capacity_profile(0, 512.0, 100) == [
            (0, 512.0),
            (10, 0.0),
            (25, 512.0),
        ]

    def test_invalid_kbps(self):
        plan = FaultPlan(seed=0, faults={0: PeerFault("refuse")})
        with pytest.raises(FaultSpecError):
            plan.capacity_profile(0, 0.0, 100)


class TestWrap:
    def test_only_faulty_indices_are_wrapped(self):
        from repro.faults import FaultyServingSession

        plan = FaultPlan.parse("1:refuse")
        sessions = [object(), object(), object()]
        wrapped = plan.wrap(sessions)
        assert wrapped[0] is sessions[0]
        assert wrapped[2] is sessions[2]
        assert isinstance(wrapped[1], FaultyServingSession)
        assert wrapped[1].peer == 1


class TestChurnKinds:
    def test_parse_and_round_trip(self):
        plan = FaultPlan.parse("seed=3;0:depart@5;1:rejoin@9;2:churn@4+6")
        assert plan.faults_for(0) == (PeerFault("depart", at_slot=5),)
        assert plan.faults_for(1) == (PeerFault("rejoin", at_slot=9),)
        assert plan.faults_for(2) == (PeerFault("churn", at_slot=4, duration=6),)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_spec_strings(self):
        assert PeerFault("depart", at_slot=5).to_entry(0) == "0:depart@5"
        assert PeerFault("rejoin", at_slot=9).to_entry(1) == "1:rejoin@9"
        assert PeerFault("churn", at_slot=4, duration=6).to_entry(2) == "2:churn@4+6"

    def test_churn_duration_defaults_to_one_slot(self):
        assert FaultPlan.parse("0:churn@4").faults_for(0) == (
            PeerFault("churn", at_slot=4, duration=1),
        )

    @pytest.mark.parametrize(
        "bad",
        ["0:depart@-1", "0:rejoin@x", "0:churn@4+0", "0:depart@1+2"],
    )
    def test_malformed_churn_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_validation(self):
        with pytest.raises(FaultSpecError):
            PeerFault("depart", at_slot=-1)
        with pytest.raises(FaultSpecError):
            PeerFault("churn", at_slot=-1, duration=3)
        with pytest.raises(FaultSpecError):
            PeerFault("churn", at_slot=0, duration=0)

    def test_capacity_profiles(self):
        depart = FaultPlan(seed=0, faults={0: PeerFault("depart", at_slot=5)})
        assert depart.capacity_profile(0, 512.0, 100) == [(0, 512.0), (5, 0.0)]
        rejoin = FaultPlan(seed=0, faults={0: PeerFault("rejoin", at_slot=9)})
        assert rejoin.capacity_profile(0, 512.0, 100) == [(0, 0.0), (9, 512.0)]
        churn = FaultPlan(
            seed=0, faults={0: PeerFault("churn", at_slot=4, duration=6)}
        )
        assert churn.capacity_profile(0, 512.0, 100) == [
            (0, 512.0),
            (4, 0.0),
            (10, 512.0),
        ]


class TestHashing:
    def test_equal_plans_hash_equal(self):
        # Regression: defining __eq__ used to suppress __hash__, making
        # plans unusable as dict keys / set members.
        a = FaultPlan.parse(SPEC)
        b = FaultPlan.parse(SPEC)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        assert {a: "x"}[b] == "x"

    def test_distinct_plans_usually_hash_apart(self):
        a = FaultPlan.parse("seed=1;0:refuse")
        b = FaultPlan.parse("seed=2;0:refuse")
        c = FaultPlan.parse("seed=1;1:refuse")
        assert len({a, b, c}) == 3
