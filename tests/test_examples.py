"""Smoke tests: every example script must run cleanly end to end.

Examples are part of the public deliverable; a refactor that breaks one
should fail the suite, not be discovered by a user.  Each script runs in
a subprocess with a generous timeout and must exit 0.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_every_example_is_covered():
    """If a new example is added, it automatically enters the matrix."""
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"
