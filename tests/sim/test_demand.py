"""Unit tests for demand processes."""

import numpy as np
import pytest

from repro.sim import (
    AlwaysOn,
    BernoulliDemand,
    DutyCycleDemand,
    ManualDemand,
    NeverRequests,
    RandomHoursDemand,
    ScheduleDemand,
    as_demand,
)


@pytest.fixture
def demand_rng():
    return np.random.default_rng(5)


class TestBernoulli:
    def test_frequency_matches_gamma(self, demand_rng):
        d = BernoulliDemand(0.3)
        hits = sum(d.sample(t, demand_rng) for t in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_extremes(self, demand_rng):
        assert not any(BernoulliDemand(0.0).sample(t, demand_rng) for t in range(100))
        assert all(BernoulliDemand(1.0).sample(t, demand_rng) for t in range(100))

    def test_gamma_property(self):
        assert BernoulliDemand(0.4).gamma == 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliDemand(1.5)


class TestConstantProcesses:
    def test_always_on(self, demand_rng):
        d = AlwaysOn()
        assert d.sample(0, demand_rng) and d.sample(10**6, demand_rng)
        assert d.gamma == 1.0

    def test_never(self, demand_rng):
        d = NeverRequests()
        assert not d.sample(0, demand_rng)
        assert d.gamma == 0.0


class TestSchedule:
    def test_half_open_intervals(self, demand_rng):
        d = ScheduleDemand([(10, 20), (30, 31)])
        assert not d.sample(9, demand_rng)
        assert d.sample(10, demand_rng)
        assert d.sample(19, demand_rng)
        assert not d.sample(20, demand_rng)
        assert d.sample(30, demand_rng)
        assert not d.sample(31, demand_rng)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ScheduleDemand([(5, 3)])


class TestDutyCycle:
    def test_hours_of_day(self, demand_rng):
        d = DutyCycleDemand([0, 23], slot_seconds=1.0)
        assert d.sample(0, demand_rng)  # hour 0
        assert not d.sample(3600, demand_rng)  # hour 1
        assert d.sample(23 * 3600, demand_rng)  # hour 23
        assert d.sample(24 * 3600, demand_rng)  # wraps to hour 0

    def test_slot_seconds_scaling(self, demand_rng):
        d = DutyCycleDemand([1], slot_seconds=60.0)
        assert not d.sample(0, demand_rng)
        assert d.sample(60, demand_rng)  # slot 60 = minute 60 = hour 1

    def test_gamma(self):
        assert DutyCycleDemand(range(12)).gamma == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DutyCycleDemand([24])
        with pytest.raises(ValueError):
            DutyCycleDemand([0], slot_seconds=0)


class TestRandomHours:
    def test_correct_number_of_hours(self):
        d = RandomHoursDemand(hours_per_day=12, seed=1)
        assert len(d.active_hours) == 12

    def test_deterministic_per_seed(self):
        a = RandomHoursDemand(12, seed=9)
        b = RandomHoursDemand(12, seed=9)
        assert a.active_hours == b.active_hours

    def test_seeds_differ(self):
        hours = {frozenset(RandomHoursDemand(12, seed=s).active_hours) for s in range(8)}
        assert len(hours) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomHoursDemand(25)


class TestManual:
    def test_flag_driven(self, demand_rng):
        d = ManualDemand()
        assert not d.sample(0, demand_rng)
        d.requesting = True
        assert d.sample(1, demand_rng)


class TestAsDemand:
    def test_coercions(self):
        assert isinstance(as_demand(0.5), BernoulliDemand)
        assert isinstance(as_demand(True), AlwaysOn)
        assert isinstance(as_demand(False), NeverRequests)
        assert isinstance(as_demand([(0, 5)]), ScheduleDemand)
        d = AlwaysOn()
        assert as_demand(d) is d

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            as_demand("sometimes")
