"""Unit tests for peer configuration and runtime state."""

import pytest

from repro.core import FreeRiderAllocator, PeerwiseProportionalAllocator
from repro.sim import (
    AlwaysOn,
    BernoulliDemand,
    ConstantCapacity,
    NeverRequests,
    PeerConfig,
    PeerState,
    ScheduleDemand,
    StepCapacity,
)


class TestPeerConfig:
    def test_coercions(self):
        cfg = PeerConfig(capacity=256.0, demand=0.5)
        assert isinstance(cfg.capacity, ConstantCapacity)
        assert isinstance(cfg.demand, BernoulliDemand)
        assert cfg.demand.gamma == 0.5

    def test_bool_demand(self):
        assert isinstance(PeerConfig(capacity=1, demand=True).demand, AlwaysOn)
        assert isinstance(PeerConfig(capacity=1, demand=False).demand, NeverRequests)

    def test_interval_demand(self):
        cfg = PeerConfig(capacity=1, demand=[(0, 10)])
        assert isinstance(cfg.demand, ScheduleDemand)

    def test_profiles_pass_through(self):
        profile = StepCapacity([(0, 5.0)])
        cfg = PeerConfig(capacity=profile, demand=True)
        assert cfg.capacity is profile

    def test_default_allocator_is_honest(self):
        cfg = PeerConfig(capacity=1, demand=True)
        assert isinstance(cfg.allocator, PeerwiseProportionalAllocator)

    def test_distinct_default_allocators(self):
        # default_factory must not share one allocator across peers
        a = PeerConfig(capacity=1, demand=True)
        b = PeerConfig(capacity=1, demand=True)
        assert a.allocator is not b.allocator


class TestPeerState:
    def make(self, **kwargs):
        defaults = dict(capacity=StepCapacity([(0, 10.0), (5, 20.0)]), demand=True)
        defaults.update(kwargs)
        return PeerState(2, PeerConfig(**defaults), n=4, initial_credit=1e-6)

    def test_capacity_at(self):
        state = self.make()
        assert state.capacity_at(0) == 10.0
        assert state.capacity_at(7) == 20.0

    def test_declared_defaults_to_truth(self):
        state = self.make()
        assert state.declared_at(0) == 10.0
        assert state.declared_at(7) == 20.0

    def test_declared_override(self):
        state = self.make(declared_capacity=999.0)
        assert state.declared_at(0) == 999.0
        assert state.capacity_at(0) == 10.0  # the truth is unchanged

    def test_ledger_dimensions(self):
        state = self.make()
        assert state.ledger.n == 4
        assert state.ledger.total() == pytest.approx(4e-6)

    def test_labels(self):
        assert self.make().label == "peer 2"
        assert self.make(label="Home PC").label == "Home PC"

    def test_forgetting_propagates(self):
        state = self.make(forgetting=0.9)
        assert state.ledger.forgetting == 0.9

    def test_adversary_allocator_kept(self):
        state = self.make(allocator=FreeRiderAllocator())
        assert isinstance(state.config.allocator, FreeRiderAllocator)
