"""Unit tests for the initialization-phase (seeding) simulator."""

import numpy as np
import pytest

from repro.sim import (
    BernoulliDemand,
    DisseminationSimulator,
    ScheduleDemand,
    SeedingOrder,
    StepCapacity,
)

MSG = 1000  # bytes per message
K = 4


def sim(**kwargs):
    defaults = dict(
        owner_capacity=8.0,  # 8 kbps -> 1000 B/slot -> 1 message/slot
        peer_capacities=[8.0, 8.0, 8.0],
        message_bytes=MSG,
        k=K,
    )
    defaults.update(kwargs)
    return DisseminationSimulator(**defaults)


class TestBasics:
    def test_completes_and_counts(self):
        report = sim().run()
        assert report.complete
        assert report.messages_sent == 3 * K
        assert report.slots == 3 * K  # one message per slot

    def test_timing_exact_sequential(self):
        report = sim(order=SeedingOrder.SEQUENTIAL).run()
        # Peer 0's k messages complete at slot k-1 (0-indexed slot ends).
        assert report.first_replica_slot == K - 1
        assert report.all_seeded_slot == 3 * K - 1

    def test_round_robin_delays_first_replica(self):
        seq = sim(order=SeedingOrder.SEQUENTIAL).run()
        rr = sim(order=SeedingOrder.ROUND_ROBIN).run()
        assert rr.first_replica_slot > seq.first_replica_slot
        # but both finish at the same time
        assert rr.all_seeded_slot == seq.all_seeded_slot

    def test_seeded_curve_monotone(self):
        report = sim().run()
        assert np.all(np.diff(report.seeded_over_time) >= 0)
        assert report.seeded_over_time[-1] == 3

    def test_potential_rate_ramps_up(self):
        report = sim().run()
        assert report.potential_rate_over_time[0] == 8.0  # owner only
        assert report.potential_rate_over_time[-1] == 8.0 * 4  # + 3 peers
        assert report.ramp_up_factor() == pytest.approx(4.0)


class TestBusyUplink:
    def test_busy_slots_stall_seeding(self):
        # Owner busy for the first 10 slots: nothing seeds.
        report = sim(owner_busy=ScheduleDemand([(0, 10)])).run()
        assert report.first_replica_slot == 10 + K - 1
        assert report.busy_fraction > 0

    def test_random_busyness_slows_roughly_proportionally(self):
        quiet = sim().run()
        busy = sim(owner_busy=BernoulliDemand(0.5), seed=3).run()
        assert busy.slots > quiet.slots * 1.5  # ~2x expected

    def test_always_busy_never_completes(self):
        report = sim(owner_busy=True).run(max_slots=100)
        assert not report.complete
        assert report.messages_sent == 0
        assert report.busy_fraction == 1.0


class TestCapacityShapes:
    def test_fractional_messages_carry_over(self):
        # 4 kbps = 500 B/slot: one message every 2 slots.
        report = sim(owner_capacity=4.0).run()
        assert report.slots == 2 * 3 * K

    def test_time_varying_uplink(self):
        # Uplink appears only from slot 5.
        profile = StepCapacity([(0, 0.0), (5, 8.0)])
        report = sim(owner_capacity=profile).run()
        assert report.first_replica_slot == 5 + K - 1

    def test_zero_capacity_never_completes(self):
        report = sim(owner_capacity=0.0).run(max_slots=50)
        assert not report.complete


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            sim(k=0)
        with pytest.raises(ValueError):
            sim(message_bytes=0)
        with pytest.raises(ValueError):
            sim(peer_capacities=[])
        with pytest.raises(ValueError):
            sim(slot_seconds=0)


class TestPaperScale:
    def test_one_megabyte_at_the_paper_point(self):
        """1 MB at k=8, q=2^32, m=2^15: 8 messages of ~128 KiB + header,
        per peer, over a 256 kbps cable uplink; 4 peers ~= 4 MB total
        ~= 131 s/MB -> ~526 s of pure uplink time."""
        from repro.rlnc import PAPER_EXAMPLE

        message_bytes = 16 + PAPER_EXAMPLE.message_bytes
        simulator = DisseminationSimulator(
            owner_capacity=256.0,
            peer_capacities=[256.0] * 4,
            message_bytes=message_bytes,
            k=PAPER_EXAMPLE.k,
        )
        report = simulator.run()
        assert report.complete
        expected = 4 * PAPER_EXAMPLE.k * message_bytes * 8 / 256_000
        assert report.slots == pytest.approx(expected, rel=0.02)
        # Availability is never zero meanwhile: the owner still serves.
        assert np.all(report.potential_rate_over_time >= 256.0)
