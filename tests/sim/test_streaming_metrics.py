"""Streaming metrics: ``history="none"`` reports match full history.

PR 9's second deliverable: an O(n) streaming accumulator (running Jain
trajectory, per-peer goodput sums, final-window rates, gain over
isolation) updated as the engine steps, so reduced-history runs feed
:func:`repro.obs.report.simulation_report` with *bit-for-bit* the same
numbers a full per-slot history produces.  The equality asserted here
is on the serialized report JSON — every engine, shard count and
feedback interval must agree to the last bit.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.report import jain_trajectory, simulation_report
from repro.sim import (
    AlwaysOn,
    BernoulliDemand,
    NeverRequests,
    PeerConfig,
    ScheduleDemand,
    Simulation,
    StepCapacity,
    StreamingMetrics,
)


def _configs():
    return [
        PeerConfig(capacity=800.0, demand=BernoulliDemand(0.7), label="heavy"),
        PeerConfig(capacity=StepCapacity([(0, 200.0), (10, 900.0)]),
                   demand=ScheduleDemand([(5, 30)])),
        PeerConfig(capacity=300.0, demand=AlwaysOn(), forgetting=0.9),
        PeerConfig(capacity=0.0, demand=AlwaysOn()),
        PeerConfig(capacity=600.0, demand=NeverRequests(), label="giver"),
    ]


def _report_json(engine, history, slots=40, workers=None, feedback=1):
    kwargs = {"workers": workers} if workers is not None else {}
    sim = Simulation(
        _configs(), seed=9, engine=engine, feedback_interval=feedback, **kwargs
    )
    with sim:
        result = sim.run(slots, history=history)
    return json.dumps(simulation_report(result), sort_keys=True)


@pytest.mark.parametrize("feedback", [1, 3])
@pytest.mark.parametrize("engine", ["reference", "batched", "sparse"])
def test_report_full_vs_none_bit_identical(engine, feedback):
    assert _report_json(engine, "full", feedback=feedback) == _report_json(
        engine, "none", feedback=feedback
    )


@pytest.mark.parametrize("workers", [1, 3])
def test_report_full_vs_none_bit_identical_procs(workers):
    assert _report_json("procs", "full", workers=workers) == _report_json(
        "procs", "none", workers=workers
    )


def test_report_none_procs_matches_reference_full():
    """The whole chain at once: sharded streaming vs the dense oracle."""
    assert _report_json("reference", "full") == _report_json(
        "procs", "none", workers=2
    )


def test_jain_trajectory_matches_trace_events():
    """The streamed per-slot Jain values are the ``sim.slot`` values."""
    with obs.observability(tracing=True, reset=True):
        with Simulation(_configs(), seed=9, engine="procs", workers=2) as sim:
            result = sim.run(30, history="none")
        slots = [
            e for e in obs.TRACER.events() if e.name == "sim.slot"
        ]
    streamed = jain_trajectory(result)
    assert len(slots) == 30
    assert [e.fields["jain"] for e in slots] == streamed


def test_window_and_gains_bitwise():
    full = Simulation(_configs(), seed=9, engine="sparse").run(40)
    with Simulation(_configs(), seed=9, engine="procs", workers=3) as sim:
        none = sim.run(40, history="none")
    window = max(1, 40 // 10)
    assert (
        none.window_mean_rates(40 - window, 40).tobytes()
        == full.window_mean_rates(40 - window, 40).tobytes()
    )
    assert (
        none.gains_over_isolation().tobytes()
        == full.gains_over_isolation().tobytes()
    )
    # Off-window queries still need per-slot history.
    with pytest.raises(ValueError, match="reduced history"):
        none.window_mean_rates(0, 5)


def test_labels_survive_reduced_history():
    with Simulation(_configs(), seed=9, engine="procs", workers=2) as sim:
        none = sim.run(10, history="none")
    assert none.label_of(0) == "heavy"
    assert none.label_of(4) == "giver"
    assert none.label_of(1) == "peer 1"


def test_streaming_accumulator_unit():
    """update_dense/update_compact are the same fold over a known run."""
    rng = np.random.default_rng(0)
    n, slots = 6, 17
    rates = rng.uniform(0.0, 100.0, size=(slots, n))
    req = rng.random(size=(slots, n)) < 0.6
    caps = rng.uniform(0.0, 50.0, size=(slots, n))
    rates[~req] = 0.0

    dense = StreamingMetrics(n, slots)
    compact = StreamingMetrics(n, slots)
    for s in range(slots):
        dense.update_dense(s, rates[s], req[s], caps[s])
        R = np.flatnonzero(req[s]).astype(np.int64)
        compact.update_compact(s, R, rates[s][R], req[s], caps[s])
    a, b = dense.summary(), compact.summary()
    assert set(a) == set(b)
    for key in a:
        assert np.asarray(a[key]).tobytes() == np.asarray(b[key]).tobytes(), key
    assert a["rate_sum"].tobytes() == rates.sum(axis=0).tobytes()
    assert a["request_count"].tolist() == req.sum(axis=0).tolist()
