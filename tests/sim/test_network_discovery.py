"""Integration tests for DHT-backed content location in the network."""

import pytest

from repro.rlnc import CodingParams
from repro.sim import FileSharingNetwork

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)


@pytest.fixture
def net():
    return FileSharingNetwork(
        [200.0] * 6, params=PARAMS, seed=5, use_discovery=True
    )


class TestDiscovery:
    def test_download_via_dht(self, net, rng):
        data = rng.bytes(3000)
        net.publish(owner=0, name="f", data=data)
        hops_after_publish = net.lookup_hops
        result = net.download(user=3, name="f")
        assert result.complete and result.data == data
        # Locating each of the 3 chunks cost routing hops.
        assert net.lookup_hops >= hops_after_publish

    def test_explicit_peers_bypass_dht(self, net, rng):
        data = rng.bytes(1000)
        net.publish(owner=0, name="f", data=data)
        before = net.lookup_hops
        result = net.download(user=0, name="f", peers=[1, 2])
        assert result.complete
        assert net.lookup_hops == before  # no lookups performed

    def test_updates_republish_changed_chunks(self, net, rng):
        data = rng.bytes(3000)
        net.publish(owner=0, name="f", data=data)
        edited = bytearray(data)
        edited[0] ^= 1
        net.publish_update(0, "f", bytes(edited))
        # The new chunk id must be resolvable and the download current.
        result = net.download(user=2, name="f")
        assert result.data == bytes(edited)

    def test_disabled_by_default(self, rng):
        net = FileSharingNetwork([200.0] * 3, params=PARAMS, seed=5)
        assert net.directory is None
        data = rng.bytes(1000)
        net.publish(owner=0, name="f", data=data)
        assert net.download(user=0, name="f").data == data
        assert net.lookup_hops == 0

    def test_directory_holds_every_chunk(self, net, rng):
        data = rng.bytes(3000)
        handle = net.publish(owner=0, name="f", data=data)
        for chunk_id in handle.manifest.chunk_ids:
            holders, _ = net.directory.locate(chunk_id)
            assert holders == tuple(range(net.n))
