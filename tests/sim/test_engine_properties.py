"""Property-based tests of engine invariants over random configurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EqualSplitAllocator,
    FreeRiderAllocator,
    GlobalProportionalAllocator,
    PeerwiseProportionalAllocator,
    SelfHoarderAllocator,
)
from repro.sim import BernoulliDemand, PeerConfig, Simulation

ALLOCATORS = [
    PeerwiseProportionalAllocator,
    GlobalProportionalAllocator,
    EqualSplitAllocator,
    FreeRiderAllocator,
    SelfHoarderAllocator,
]


def network_configs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    configs = []
    for _ in range(n):
        cap = draw(st.floats(min_value=0.0, max_value=2000.0))
        gamma = draw(st.floats(min_value=0.0, max_value=1.0))
        allocator_cls = draw(st.sampled_from(ALLOCATORS))
        configs.append(
            PeerConfig(
                capacity=cap,
                demand=BernoulliDemand(gamma),
                allocator=allocator_cls(),
            )
        )
    return configs


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_conservation_holds_for_any_network(data):
    """No slot may deliver more than the physical capacities allow, and
    nothing flows to users who did not request."""
    configs = network_configs(data.draw)
    seed = data.draw(st.integers(min_value=0, max_value=1000))
    sim = Simulation(configs, seed=seed)
    result = sim.run(30, record_allocations=True)

    assert np.all(result.alloc_history >= 0)
    per_slot_sent = result.alloc_history.sum(axis=2)  # (T, n) peer outflow
    assert np.all(per_slot_sent <= result.capacities + 1e-9)
    # Non-requesters receive exactly zero.
    received = result.alloc_history.sum(axis=1)  # (T, n) user inflow
    assert np.all(received[~result.requesting] == 0.0)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_ledgers_equal_received_totals(data):
    """Every ledger equals the initial credit plus all bandwidth its user
    actually received — the bookkeeping invariant of Equation (2)."""
    configs = network_configs(data.draw)
    sim = Simulation(configs, seed=7, initial_credit=1e-6)
    result = sim.run(25, record_allocations=True)
    received = result.alloc_history.sum(axis=0)  # (from, to) totals
    for j, peer in enumerate(sim.peers):
        expected = received[:, j] + 1e-6
        assert np.allclose(peer.ledger.credits, expected, rtol=1e-9, atol=1e-12)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    slots=st.integers(min_value=1, max_value=60),
)
@settings(max_examples=25, deadline=None)
def test_determinism(seed, slots):
    def run():
        configs = [
            PeerConfig(capacity=100.0 * (i + 1), demand=BernoulliDemand(0.5))
            for i in range(3)
        ]
        return Simulation(configs, seed=seed).run(slots)

    a, b = run(), run()
    assert np.array_equal(a.rates, b.rates)
    assert np.array_equal(a.requesting, b.requesting)
