"""Bit-identity and behaviour of the process-sharded engine (PR 9).

The procs engine partitions the peers into contiguous shards, runs each
shard's sparse ledger rows in its own worker process and exchanges
cross-shard credit as explicit message batches — yet its contract is
the batched/sparse contract unchanged: every observable output must
match the reference slot loop *bit for bit*, at any worker count,
native kernels or numpy fallback.  These tests reuse the equivalence
harness of ``test_engine_batched.py`` with ``engine="procs"`` and add
the procs-only surfaces: worker-count invariance, auto-selection with
the ``workers`` trace field, lifecycle (close/context manager) and the
scale scenario plumbing.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import (
    EqualSplitAllocator,
    GlobalProportionalAllocator,
    IsolationAllocator,
    PeerwiseProportionalAllocator,
    RandomAllocator,
    WithholdingAllocator,
)
from repro.sim import (
    AlwaysOn,
    BernoulliDemand,
    NeverRequests,
    PeerConfig,
    ScheduleDemand,
    Simulation,
    StepCapacity,
    million_peer_smoke,
    sparse_population,
)

from test_engine_batched import adversarial_configs, assert_equivalent


def procs_engines(workers):
    """Engine spec accepted by :func:`assert_equivalent_procs`."""
    return ("reference", "sparse") + tuple(("procs", w) for w in workers)


def assert_equivalent_procs(make_configs, workers=(1, 2, 4), **kwargs):
    """The batched-engine harness, extended with procs at worker counts.

    ``assert_equivalent`` compares single-process engines; this wrapper
    additionally runs ``engine="procs"`` at each worker count against
    the same reference oracle and closes the coordinators afterwards.
    """
    slots = kwargs.pop("slots", 24)
    seed = kwargs.pop("seed", 3)
    ref_sim = Simulation(make_configs(), seed=seed, engine="reference", **kwargs)
    ref = ref_sim.run(slots, record_allocations=True)
    ref_credit = ref_sim.credit_matrix()
    for w in workers:
        sim = Simulation(
            make_configs(), seed=seed, engine="procs", workers=w, **kwargs
        )
        with sim:
            got = sim.run(slots, record_allocations=True)
            credit = sim.credit_matrix()
        assert ref.rates.tobytes() == got.rates.tobytes(), w
        assert ref.requesting.tobytes() == got.requesting.tobytes(), w
        assert ref.capacities.tobytes() == got.capacities.tobytes(), w
        assert ref.alloc_history.tobytes() == got.alloc_history.tobytes(), w
        assert ref.mean_alloc.tobytes() == got.mean_alloc.tobytes(), w
        assert ref_credit.tobytes() == credit.tobytes(), w
    return ref


@pytest.mark.parametrize("feedback_interval", [1, 3])
def test_adversarial_mix_bit_identical(feedback_interval):
    assert_equivalent_procs(
        adversarial_configs,
        slots=37,
        feedback_interval=feedback_interval,
    )


def test_slot_seconds_weighting_bit_identical():
    assert_equivalent_procs(
        adversarial_configs, slots=20, slot_seconds=7.5, workers=(2,)
    )


def test_forgetting_mix_bit_identical():
    """Lazy per-epoch decay must survive the shard split mid-epoch."""

    def configs():
        return [
            PeerConfig(
                capacity=200.0 + 50.0 * i,
                demand=BernoulliDemand(0.4 + 0.05 * i),
                forgetting=0.9 if i % 2 else 1.0,
            )
            for i in range(7)
        ]

    assert_equivalent_procs(
        configs, slots=30, feedback_interval=2, workers=(1, 3)
    )


def test_numpy_fallback_bit_identical(monkeypatch):
    """Without native kernels (inherited by workers) procs still matches."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    from repro.sim import fastpath

    monkeypatch.setattr(fastpath, "_RESOLVED", False)
    monkeypatch.setattr(fastpath, "_CACHED", None)
    sim = Simulation(adversarial_configs(), seed=3, engine="procs", workers=2)
    assert sim.backend == "procs"
    with sim:
        got = sim.run(24, record_allocations=True)
    ref = Simulation(adversarial_configs(), seed=3, engine="reference").run(
        24, record_allocations=True
    )
    assert ref.rates.tobytes() == got.rates.tobytes()
    assert ref.alloc_history.tobytes() == got.alloc_history.tobytes()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_random_networks_bit_identical(data):
    """Random mixes: islands, fast paths, any feedback, any shard count."""
    factories = [
        PeerwiseProportionalAllocator,
        GlobalProportionalAllocator,
        IsolationAllocator,
        EqualSplitAllocator,
        lambda: WithholdingAllocator(0.5),
        lambda: RandomAllocator(seed=5),
    ]
    n = data.draw(st.integers(min_value=1, max_value=7))
    chosen = [
        data.draw(st.sampled_from(factories), label=f"alloc{i}")
        for i in range(n)
    ]
    caps = [
        data.draw(st.floats(min_value=0.0, max_value=2000.0), label=f"cap{i}")
        for i in range(n)
    ]
    gammas = [
        data.draw(st.floats(min_value=0.0, max_value=1.0), label=f"gamma{i}")
        for i in range(n)
    ]
    forgettings = [
        data.draw(st.sampled_from([1.0, 0.9]), label=f"forget{i}")
        for i in range(n)
    ]
    feedback = data.draw(st.integers(min_value=1, max_value=4))
    seed = data.draw(st.integers(min_value=0, max_value=10_000))
    workers = data.draw(st.sampled_from([1, 2, 4]))

    def make_configs():
        return [
            PeerConfig(
                capacity=caps[i],
                demand=BernoulliDemand(gammas[i]),
                allocator=chosen[i](),
                forgetting=forgettings[i],
            )
            for i in range(n)
        ]

    assert_equivalent_procs(
        make_configs,
        slots=18,
        seed=seed,
        feedback_interval=feedback,
        workers=(workers,),
    )


# -- history modes ----------------------------------------------------------


def _history_configs():
    return [
        PeerConfig(capacity=400.0, demand=BernoulliDemand(0.5)),
        PeerConfig(capacity=StepCapacity([(0, 100.0), (9, 700.0)]),
                   demand=AlwaysOn()),
        PeerConfig(capacity=300.0, demand=ScheduleDemand([(3, 14)])),
        PeerConfig(capacity=500.0, demand=NeverRequests()),
    ]


def test_history_modes_consistent():
    with Simulation(_history_configs(), seed=4, engine="procs",
                    workers=2) as sim:
        full = sim.run(20)
    with Simulation(_history_configs(), seed=4, engine="procs",
                    workers=2) as sim:
        rates_only = sim.run(20, history="rates")
    with Simulation(_history_configs(), seed=4, engine="procs",
                    workers=2) as sim:
        none = sim.run(20, history="none")

    assert full.rates.tobytes() == rates_only.rates.tobytes()
    assert rates_only.mean_alloc is None
    assert none.rates is None and none.summary is not None
    assert none.summary["rate_sum"].tobytes() == full.rates.sum(
        axis=0
    ).tobytes()
    assert none.summary["request_count"].tobytes() == full.requesting.sum(
        axis=0
    ).tobytes()


# -- auto-selection and its trace event ------------------------------------


def test_auto_selects_procs_with_enough_workers(monkeypatch):
    from repro.sim import engine as engine_mod

    monkeypatch.setattr(engine_mod, "_SPARSE_N_THRESHOLD", 4)
    monkeypatch.setattr(engine_mod, "_PROCS_N_THRESHOLD", 8)
    monkeypatch.setattr(engine_mod, "_usable_workers", lambda: 4)
    configs = [
        PeerConfig(capacity=100.0, demand=BernoulliDemand(0.5))
        for _ in range(10)
    ]
    with obs.observability(tracing=True, reset=True):
        sim = Simulation(configs, engine="auto")
        events = [
            e for e in obs.TRACER.events() if e.name == "sim.engine_selected"
        ]
    with sim:
        assert sim.backend.startswith("procs")
    (event,) = events
    assert event.fields["engine"] == "procs"
    assert event.fields["workers"] == 4
    assert "usable workers" in event.fields["reason"]


def test_auto_keeps_sparse_on_one_cpu(monkeypatch):
    from repro.sim import engine as engine_mod

    monkeypatch.setattr(engine_mod, "_SPARSE_N_THRESHOLD", 4)
    monkeypatch.setattr(engine_mod, "_PROCS_N_THRESHOLD", 8)
    monkeypatch.setattr(engine_mod, "_usable_workers", lambda: 1)
    configs = [
        PeerConfig(capacity=100.0, demand=BernoulliDemand(0.5))
        for _ in range(10)
    ]
    with obs.observability(tracing=True, reset=True):
        sim = Simulation(configs, engine="auto")
        events = [
            e for e in obs.TRACER.events() if e.name == "sim.engine_selected"
        ]
    assert sim.backend.startswith("sparse")
    (event,) = events
    assert event.fields["engine"] == "sparse"
    assert event.fields["workers"] == 0


def test_workers_env_caps_auto_selection(monkeypatch):
    from repro.sim import engine as engine_mod

    monkeypatch.setenv("REPRO_SIM_THREADS", "1")
    monkeypatch.setattr(engine_mod, "_SPARSE_N_THRESHOLD", 4)
    monkeypatch.setattr(engine_mod, "_PROCS_N_THRESHOLD", 8)
    configs = [
        PeerConfig(capacity=100.0, demand=BernoulliDemand(0.5))
        for _ in range(10)
    ]
    sim = Simulation(configs, engine="auto")
    assert sim.backend.startswith("sparse")


def test_explicit_workers_event_field():
    with obs.observability(tracing=True, reset=True):
        sim = Simulation(_history_configs(), engine="procs", workers=3)
        events = [
            e for e in obs.TRACER.events() if e.name == "sim.engine_selected"
        ]
    with sim:
        pass
    (event,) = events
    assert event.fields["engine"] == "procs"
    assert event.fields["workers"] == 3


# -- lifecycle and validation ----------------------------------------------


def test_workers_capped_by_population():
    with Simulation(_history_configs(), engine="procs", workers=32) as sim:
        assert sim._workers == len(_history_configs())
        sim.run(5)


def test_close_is_idempotent_and_context_manager():
    sim = Simulation(_history_configs(), seed=1, engine="procs", workers=2)
    sim.run(5)
    sim.close()
    sim.close()
    with Simulation(_history_configs(), seed=1, engine="procs", workers=2) as s:
        s.run(5)
        assert s.memory_bytes() > 0
        assert s.credit_matrix().shape == (4, 4)


def test_validation_errors():
    with pytest.raises(ValueError, match="workers"):
        Simulation(_history_configs(), engine="sparse", workers=2)
    with pytest.raises(ValueError, match="workers"):
        Simulation(_history_configs(), engine="procs", workers=0)
    with pytest.raises(ValueError, match="evict_age"):
        Simulation(_history_configs(), engine="reference", evict_age=4)
    with pytest.raises(ValueError, match="evict_age"):
        Simulation(_history_configs(), engine="procs", evict_age=0)
    with pytest.raises(ValueError, match="engine"):
        Simulation(_history_configs(), engine="bogus")


# -- scale scenario plumbing ------------------------------------------------


def test_sparse_population_matches_reference_at_small_n():
    kwargs = dict(n=40, cohorts=8, givers=4, slots=16, seed=3)
    ref = sparse_population(engine="reference", history="full", **kwargs)
    procs = sparse_population(
        engine="procs", workers=3, history="full", **kwargs
    )
    assert ref.rates.tobytes() == procs.rates.tobytes()
    assert ref.requesting.tobytes() == procs.requesting.tobytes()


def test_million_peer_smoke_procs_shrunk():
    report = million_peer_smoke(
        n=1500, slots=3, cohorts=12, givers=4, engine="procs", workers=2
    )
    assert report["backend"].startswith("procs")
    assert report["workers"] == 2
    assert report["state_bytes"] > 0
    assert report["peak_rss_bytes"] > 0
    assert report["rate_sum_total"] > 0
