"""Tests for the churn scenario (dynamic environment, future work)."""

import numpy as np
import pytest

from repro.core import check_theorem1
from repro.sim import churn_network


class TestChurnScenario:
    def test_churners_actually_churn(self):
        result = churn_network(n=6, slots=10_000, seed=2)
        for i in range(3):  # churners
            caps = result.capacities[:, i]
            assert (caps == 0).any() and (caps > 0).any(), i
        for i in range(3, 6):  # stable peers
            assert np.all(result.capacities[:, i] == 512.0)

    def test_stable_peers_keep_theorem1(self):
        """The incentive bound must hold for stable peers even as others
        come and go (their mu_i is what they actually provided)."""
        result = churn_network(n=8, slots=25_000, seed=4)
        report = check_theorem1(
            result.mean_capacity(), result.empirical_gamma(), result.mean_alloc
        )
        for i in range(4, 8):  # stable peers
            assert report.slack[i] >= -0.03 * 512.0, (i, report.slack)

    def test_churners_get_proportionally_less(self):
        """A peer online half the time contributes half the capacity and
        should receive commensurately less than stable peers."""
        result = churn_network(n=8, slots=25_000, seed=4)
        rates = result.mean_download_bandwidth()
        contributed = result.mean_capacity()
        churn_ratio = rates[:4].mean() / rates[4:].mean()
        contrib_ratio = contributed[:4].mean() / contributed[4:].mean()
        # Received share tracks contributed share within a loose band.
        assert churn_ratio == pytest.approx(contrib_ratio, abs=0.30)
        assert rates[:4].mean() < rates[4:].mean()

    def test_total_capacity_never_exceeded(self):
        result = churn_network(n=6, slots=5_000, seed=1)
        assert np.all(
            result.rates.sum(axis=1) <= result.capacities.sum(axis=1) + 1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            churn_network(n=4, churners=5, slots=100)

    def test_deterministic(self):
        a = churn_network(n=4, slots=2_000, seed=7)
        b = churn_network(n=4, slots=2_000, seed=7)
        assert np.array_equal(a.rates, b.rates)
