"""Tests for the churn scenario (dynamic environment, future work)."""

import numpy as np
import pytest

from repro.core import check_theorem1
from repro.sim import Simulation, churn_configs, churn_network


class TestChurnScenario:
    def test_churners_actually_churn(self):
        result = churn_network(n=6, slots=10_000, seed=2)
        for i in range(3):  # churners
            caps = result.capacities[:, i]
            assert (caps == 0).any() and (caps > 0).any(), i
        for i in range(3, 6):  # stable peers
            assert np.all(result.capacities[:, i] == 512.0)

    def test_stable_peers_keep_theorem1(self):
        """The incentive bound must hold for stable peers even as others
        come and go (their mu_i is what they actually provided)."""
        result = churn_network(n=8, slots=25_000, seed=4)
        report = check_theorem1(
            result.mean_capacity(), result.empirical_gamma(), result.mean_alloc
        )
        for i in range(4, 8):  # stable peers
            assert report.slack[i] >= -0.03 * 512.0, (i, report.slack)

    def test_churners_get_proportionally_less(self):
        """A peer online half the time contributes half the capacity and
        should receive commensurately less than stable peers."""
        result = churn_network(n=8, slots=25_000, seed=4)
        rates = result.mean_download_bandwidth()
        contributed = result.mean_capacity()
        churn_ratio = rates[:4].mean() / rates[4:].mean()
        contrib_ratio = contributed[:4].mean() / contributed[4:].mean()
        # Received share tracks contributed share within a loose band.
        assert churn_ratio == pytest.approx(contrib_ratio, abs=0.30)
        assert rates[:4].mean() < rates[4:].mean()

    def test_total_capacity_never_exceeded(self):
        result = churn_network(n=6, slots=5_000, seed=1)
        assert np.all(
            result.rates.sum(axis=1) <= result.capacities.sum(axis=1) + 1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            churn_network(n=4, churners=5, slots=100)

    def test_deterministic(self):
        a = churn_network(n=4, slots=2_000, seed=7)
        b = churn_network(n=4, slots=2_000, seed=7)
        assert np.array_equal(a.rates, b.rates)

    def test_configs_match_network(self):
        """churn_network must be a pure delegation to churn_configs."""
        configs = churn_configs(n=4, slots=2_000, seed=7)
        via_configs = Simulation(configs, seed=7).run(2_000)
        direct = churn_network(n=4, slots=2_000, seed=7)
        assert np.array_equal(via_configs.rates, direct.rates)
        assert np.array_equal(via_configs.capacities, direct.capacities)


class TestLedgerRecovery:
    """End-to-end through Simulation.run: a churner's standing in other
    peers' ledgers freezes while it is offline and resumes growing once
    it rejoins — the dynamics the paper's future-work section asks about.
    """

    def test_churner_ledger_recovers_after_rejoin(self):
        slots = 3_000
        configs = churn_configs(n=6, churners=1, slots=slots, seed=2)
        caps = [configs[0].capacity.value(t) for t in range(slots)]
        off_start = next(
            t for t in range(1, slots) if caps[t - 1] > 0 and caps[t] == 0
        )
        off_end = next(t for t in range(off_start, slots) if caps[t] > 0)
        on_end = next((t for t in range(off_end, slots) if caps[t] == 0), slots)

        sim = Simulation(configs, seed=2)
        stable = sim.peers[5]  # any stable peer's view of churner 0

        sim.run(off_start)
        credit_before_offline = stable.ledger.credit_of(0)
        assert credit_before_offline > 0  # it contributed while online

        sim.run(off_end - off_start)
        credit_after_offline = stable.ledger.credit_of(0)
        # Offline the churner uploads nothing: its credit is frozen.
        assert credit_after_offline == pytest.approx(credit_before_offline)

        rejoined = sim.run(on_end - off_end)
        credit_after_rejoin = stable.ledger.credit_of(0)
        # Back online, contributions resume and the ledger recovers.
        assert credit_after_rejoin > credit_after_offline
        # ... and so does the churner's own download service.
        requested = rejoined.requesting[:, 0]
        assert rejoined.rates[requested, 0].mean() > 0.0

    def test_every_churner_ledger_grows_by_the_end(self):
        slots = 10_000
        configs = churn_configs(n=6, churners=3, slots=slots, seed=4)
        sim = Simulation(configs, seed=4)
        initial = sim.peers[5].ledger.credit_of(0)  # Equation (2) seed credit
        sim.run(slots)
        for churner in range(3):
            # Each churner was online long enough to out-earn its
            # initialisation credit at the stable peers.
            assert sim.peers[5].ledger.credit_of(churner) > initial
