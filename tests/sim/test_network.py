"""Integration tests for the full-stack file-sharing network."""

import pytest

from repro.core import FreeRiderAllocator
from repro.rlnc import CodingParams
from repro.sim import FileSharingNetwork


@pytest.fixture(scope="module")
def small_params():
    return CodingParams(p=16, m=64, file_bytes=1024)  # k = 8


@pytest.fixture
def net(small_params):
    return FileSharingNetwork(
        [256.0, 512.0, 1024.0], params=small_params, seed=4
    )


@pytest.fixture
def payload(rng):
    return rng.bytes(3000)


class TestPublish:
    def test_bundles_distributed_to_all_peers(self, net, payload):
        handle = net.publish(owner=0, name="f", data=payload)
        for store in net.stores:
            for chunk_id in handle.manifest.chunk_ids:
                assert store.count(chunk_id) == net.params.k

    def test_duplicate_name_rejected(self, net, payload):
        net.publish(owner=0, name="f", data=payload)
        with pytest.raises(ValueError):
            net.publish(owner=1, name="f", data=payload)

    def test_bad_owner_rejected(self, net, payload):
        with pytest.raises(IndexError):
            net.publish(owner=9, name="f", data=payload)

    def test_message_limit(self, net, payload):
        handle = net.publish(owner=0, name="f", data=payload, message_limit=3)
        assert net.stores[1].count(handle.manifest.chunk_ids[0]) == 3

    def test_initialization_time_positive(self, net, payload):
        handle = net.publish(owner=0, name="f", data=payload)
        seconds = net.initialization_seconds(handle)
        assert seconds > 0
        # wire bytes * 8 / (kbps * 1000)
        assert seconds == pytest.approx(handle.wire_bytes * 8 / 256_000)

    def test_digests_recorded_with_owner(self, net, payload):
        handle = net.publish(owner=2, name="f", data=payload)
        expected = handle.n_chunks * net.params.k * net.n
        assert len(net.digest_stores[2]) == expected


class TestDownload:
    def test_roundtrip(self, net, payload):
        net.publish(owner=0, name="f", data=payload)
        result = net.download(user=0, name="f")
        assert result.complete
        assert result.data == payload

    def test_download_someone_elses_file(self, net, payload):
        """Any authenticated user can fetch the coded messages; only the
        owner's manifest (held by the network registry here) makes them
        decodable — user 1 downloading user 0's published file models
        user 0 at a remote terminal."""
        net.publish(owner=0, name="f", data=payload)
        result = net.download(user=1, name="f")
        assert result.complete and result.data == payload

    def test_unknown_file(self, net):
        with pytest.raises(KeyError):
            net.download(user=0, name="nope")

    def test_aggregate_rate_beats_own_uplink(self, small_params, rng):
        data = rng.bytes(4000)
        net = FileSharingNetwork([256.0] * 6, params=small_params, seed=1)
        net.publish(owner=0, name="f", data=data)
        result = net.download(user=0, name="f", download_cap_kbps=10_000.0)
        assert result.mean_rate_kbps() > 256.0 * 3

    def test_download_cap_respected(self, small_params, rng):
        data = rng.bytes(4000)
        net = FileSharingNetwork([256.0] * 6, params=small_params, seed=1)
        net.publish(owner=0, name="f", data=data)
        result = net.download(user=0, name="f", download_cap_kbps=300.0)
        assert result.complete
        assert result.mean_rate_kbps() <= 300.0 * 1.01

    def test_subset_of_peers(self, net, payload):
        net.publish(owner=0, name="f", data=payload)
        result = net.download(user=0, name="f", peers=[0, 1])
        assert result.complete and result.data == payload

    def test_partial_storage_needs_other_peers(self, small_params, rng):
        data = rng.bytes(1000)
        net = FileSharingNetwork([100.0, 100.0, 100.0], params=small_params, seed=2)
        net.publish(owner=0, name="f", data=data, message_limit=3)
        # 3 peers x 3 messages = 9 >= k = 8: decodable only by combining.
        result = net.download(user=0, name="f")
        assert result.complete and result.data == data

    def test_partial_storage_insufficient_fails_cleanly(self, small_params, rng):
        data = rng.bytes(1000)
        net = FileSharingNetwork([100.0, 100.0], params=small_params, seed=2)
        net.publish(owner=0, name="f", data=data, message_limit=3)
        # 2 peers x 3 = 6 < k = 8: cannot complete.
        result = net.download(user=0, name="f", max_slots=500)
        assert not result.complete
        assert result.data == b""

    def test_ledgers_updated_by_download(self, net, payload):
        net.publish(owner=0, name="f", data=payload)
        before = net.ledger_of(0).credits.copy()
        net.download(user=0, name="f")
        after = net.ledger_of(0).credits
        assert after.sum() > before.sum()

    def test_free_riding_peer_still_serves_stored_data(self, small_params, rng):
        """A peer whose *allocator* free-rides contributes no bandwidth,
        but the others still carry the download."""
        data = rng.bytes(1000)
        net = FileSharingNetwork(
            [100.0] * 4,
            params=small_params,
            seed=3,
            allocators={1: FreeRiderAllocator()},
        )
        net.publish(owner=0, name="f", data=data)
        result = net.download(user=0, name="f")
        assert result.complete and result.data == data
        # Peer 1 transferred nothing.
        assert result.reports[0].per_peer_bytes[1] == 0.0


class TestValidation:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            FileSharingNetwork([])
