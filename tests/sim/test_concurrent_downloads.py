"""Tests for concurrent multi-user downloads over one allocation timeline."""

import pytest

from repro.rlnc import CodingParams
from repro.sim import FileSharingNetwork

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)


@pytest.fixture
def net():
    return FileSharingNetwork([400.0, 400.0, 400.0, 400.0], params=PARAMS, seed=8)


@pytest.fixture
def blobs(rng):
    return {i: rng.bytes(6 * 1024) for i in range(3)}


class TestConcurrent:
    def test_two_users_both_complete(self, net, blobs):
        net.publish(owner=0, name="a", data=blobs[0])
        net.publish(owner=1, name="b", data=blobs[1])
        results = net.download_concurrently([(0, "a"), (1, "b")])
        assert results[0].complete and results[0].data == blobs[0]
        assert results[1].complete and results[1].data == blobs[1]

    def test_single_request_equals_plain_download_shape(self, net, blobs):
        net.publish(owner=0, name="a", data=blobs[0])
        (result,) = net.download_concurrently([(2, "a")])
        assert result.complete and result.data == blobs[0]
        assert len(result.reports) == 6  # one per chunk

    def test_contention_slows_both(self, rng, blobs):
        def fresh():
            net = FileSharingNetwork([400.0] * 4, params=PARAMS, seed=8)
            net.publish(owner=0, name="a", data=blobs[0])
            net.publish(owner=1, name="b", data=blobs[1])
            return net

        solo = fresh().download_concurrently([(0, "a")])[0]
        pair = fresh().download_concurrently([(0, "a"), (1, "b")])
        assert pair[0].slots >= solo.slots
        assert pair[0].complete and pair[1].complete

    def test_equal_peers_get_equal_service(self, net, blobs):
        """Two identical users downloading identical-size files must see
        (nearly) identical transfer times — pairwise fairness realised
        in actual transfers."""
        net.publish(owner=0, name="a", data=blobs[0])
        net.publish(owner=1, name="b", data=blobs[1])
        results = net.download_concurrently([(0, "a"), (1, "b")])
        assert abs(results[0].slots - results[1].slots) <= 2

    def test_three_way(self, net, blobs):
        for i in range(3):
            net.publish(owner=i, name=f"f{i}", data=blobs[i])
        results = net.download_concurrently([(i, f"f{i}") for i in range(3)])
        for i, result in enumerate(results):
            assert result.complete and result.data == blobs[i]

    def test_duplicate_user_rejected(self, net, blobs):
        net.publish(owner=0, name="a", data=blobs[0])
        with pytest.raises(ValueError):
            net.download_concurrently([(0, "a"), (0, "a")])

    def test_unknown_file_rejected(self, net):
        with pytest.raises(KeyError):
            net.download_concurrently([(0, "ghost")])

    def test_incomplete_when_slots_exhausted(self, net, blobs):
        net.publish(owner=0, name="a", data=blobs[0])
        (result,) = net.download_concurrently([(0, "a")], max_slots=1)
        assert not result.complete
        assert result.data == b""

    def test_download_cap_applies_per_user(self, net, blobs):
        net.publish(owner=0, name="a", data=blobs[0])
        fast = net.download_concurrently([(0, "a")])[0]
        net2 = FileSharingNetwork([400.0] * 4, params=PARAMS, seed=8)
        net2.publish(owner=0, name="a", data=blobs[0])
        # each ~1.2 kB chunk bundle needs ~9.2 kbps to finish in one
        # slot, so a 5 kbps cap forces multiple slots per chunk
        slow = net2.download_concurrently([(0, "a")], download_cap_kbps=5.0)[0]
        assert slow.complete
        assert slow.slots > fast.slots

    def test_sequential_state_clean_after_concurrent(self, net, blobs):
        net.publish(owner=0, name="a", data=blobs[0])
        net.download_concurrently([(0, "a"), (1, "a")])
        # A plain download afterwards still works.
        result = net.download(user=2, name="a")
        assert result.complete and result.data == blobs[0]
