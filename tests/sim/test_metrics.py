"""Unit tests for simulation result metrics."""

import json

import numpy as np
import pytest

from repro.sim import SimulationResult


def make_result():
    rates = np.array(
        [
            [100.0, 0.0],
            [150.0, 50.0],
            [200.0, 100.0],
            [250.0, 0.0],
        ]
    )
    requesting = np.array(
        [
            [True, False],
            [True, True],
            [True, True],
            [True, False],
        ]
    )
    capacities = np.full((4, 2), 100.0)
    mean_alloc = np.array([[50.0, 10.0], [125.0, 27.5]])
    return SimulationResult(
        rates=rates,
        requesting=requesting,
        capacities=capacities,
        mean_alloc=mean_alloc,
        labels=("a", "b"),
    )


class TestBasics:
    def test_dimensions(self):
        r = make_result()
        assert r.slots == 4
        assert r.n == 2

    def test_empirical_gamma(self):
        r = make_result()
        assert np.allclose(r.empirical_gamma(), [1.0, 0.5])

    def test_mean_capacity(self):
        assert np.allclose(make_result().mean_capacity(), [100.0, 100.0])

    def test_labels(self):
        r = make_result()
        assert r.label_of(0) == "a"
        assert r.label_of(5) == "peer 5"


class TestRates:
    def test_mean_download_bandwidth(self):
        r = make_result()
        assert np.allclose(r.mean_download_bandwidth(), [175.0, 37.5])

    def test_mean_rate_while_requesting(self):
        r = make_result()
        assert r.mean_rate_while_requesting()[0] == pytest.approx(175.0)
        assert r.mean_rate_while_requesting()[1] == pytest.approx(75.0)

    def test_window_mean(self):
        r = make_result()
        assert np.allclose(r.window_mean_rates(1, 3), [175.0, 75.0])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            make_result().window_mean_rates(3, 2)

    def test_smoothing_matches_running_average(self):
        r = make_result()
        out = r.smoothed_rates(window=2)
        assert out[1, 0] == pytest.approx(125.0)


class TestIsolationComparisons:
    def test_isolation_baseline(self):
        r = make_result()
        # gamma_hat * capacity with realised indicators: [1.0, 0.5] * 100
        assert np.allclose(r.isolation_baseline(), [100.0, 50.0])

    def test_gains_over_isolation(self):
        r = make_result()
        gains = r.gains_over_isolation()
        assert gains[0] == pytest.approx(75.0)  # 175 - 100
        assert gains[1] == pytest.approx(-25.0)  # 75 - 100


class TestJsonRoundTrip:
    def test_round_trip_is_bit_exact(self):
        r = make_result()
        blob = json.loads(json.dumps(r.to_dict()))
        restored = SimulationResult.from_dict(blob)
        assert np.array_equal(restored.rates, r.rates)
        assert np.array_equal(restored.requesting, r.requesting)
        assert restored.requesting.dtype == np.bool_
        assert np.array_equal(restored.capacities, r.capacities)
        assert np.array_equal(restored.mean_alloc, r.mean_alloc)
        assert restored.slot_seconds == r.slot_seconds
        assert restored.labels == r.labels
        assert restored.alloc_history is None

    def test_round_trip_with_history(self):
        r = make_result()
        history = np.arange(4 * 2 * 2, dtype=float).reshape(4, 2, 2)
        r = SimulationResult(
            rates=r.rates,
            requesting=r.requesting,
            capacities=r.capacities,
            mean_alloc=r.mean_alloc,
            alloc_history=history,
            labels=r.labels,
        )
        restored = SimulationResult.from_dict(r.to_dict())
        assert np.array_equal(restored.alloc_history, history)

    def test_include_history_false_drops_tensor(self):
        r = make_result()
        r = SimulationResult(
            rates=r.rates,
            requesting=r.requesting,
            capacities=r.capacities,
            mean_alloc=r.mean_alloc,
            alloc_history=np.zeros((4, 2, 2)),
        )
        assert r.to_dict(include_history=False)["alloc_history"] is None

    def test_derived_metrics_survive_round_trip(self):
        r = make_result()
        restored = SimulationResult.from_dict(r.to_dict())
        assert np.allclose(restored.empirical_gamma(), r.empirical_gamma())
        assert np.allclose(
            restored.mean_rate_while_requesting(),
            r.mean_rate_while_requesting(),
        )
