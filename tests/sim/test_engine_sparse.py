"""Bit-identity and behaviour of the sparse ledger engine (PR 8).

The sparse engine holds CSR-style per-peer ledger rows instead of the
dense ``(n, n)`` credit matrix and allocates over the active-request
set only — yet its contract is the same as the batched engine's: every
observable output must match the reference slot loop *bit for bit*,
native kernels or numpy fallback, at any thread count.  These tests
reuse the equivalence harness of ``test_engine_batched.py`` with
``engine="sparse"`` and add the sparse-only surfaces: reduced history
modes, auto-selection (with its ``sim.engine_selected`` trace event),
thread-count invariance, and the scale scenario plumbing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import (
    EqualSplitAllocator,
    GlobalProportionalAllocator,
    IsolationAllocator,
    PeerwiseProportionalAllocator,
    RandomAllocator,
    WithholdingAllocator,
)
from repro.sim import (
    AlwaysOn,
    BernoulliDemand,
    NeverRequests,
    PeerConfig,
    ScheduleDemand,
    Simulation,
    StepCapacity,
    million_peer_smoke,
    sparse_population,
    sparse_population_sim,
)

from test_engine_batched import adversarial_configs, assert_equivalent

ENGINES = ("reference", "sparse")


@pytest.mark.parametrize("feedback_interval", [1, 3])
@pytest.mark.parametrize("slot_seconds", [1.0, 7.5])
def test_adversarial_mix_bit_identical(feedback_interval, slot_seconds):
    assert_equivalent(
        adversarial_configs,
        slots=37,
        feedback_interval=feedback_interval,
        slot_seconds=slot_seconds,
        engines=ENGINES,
    )


def test_three_engines_agree_on_forgetting_mix():
    """reference, batched and sparse in one run, with lazy decay live."""

    def configs():
        return [
            PeerConfig(capacity=500.0, demand=BernoulliDemand(0.6),
                       forgetting=0.9),
            PeerConfig(capacity=300.0, demand=AlwaysOn(), forgetting=0.8),
            PeerConfig(capacity=700.0, demand=BernoulliDemand(0.4),
                       allocator=GlobalProportionalAllocator(),
                       declared_capacity=1500.0),
            PeerConfig(capacity=0.0, demand=AlwaysOn()),
            PeerConfig(capacity=400.0, demand=NeverRequests(), forgetting=0.95),
        ]

    assert_equivalent(
        configs,
        slots=50,
        feedback_interval=2,
        engines=("reference", "batched", "sparse"),
    )


def test_numpy_fallback_bit_identical(monkeypatch):
    """With native kernels disabled the sparse path must still match."""
    from repro.sim import engine as engine_mod

    monkeypatch.setattr(engine_mod.fastpath, "load", lambda: None)
    sim = Simulation(adversarial_configs(), engine="sparse")
    assert sim.backend == "sparse"
    assert_equivalent(
        adversarial_configs, slots=31, feedback_interval=2, engines=ENGINES
    )


def test_thread_count_invariance(monkeypatch):
    """Sharded kernels must produce identical bits at any thread count."""
    def configs():
        return [
            PeerConfig(
                capacity=100.0 + 13.0 * (i % 7),
                demand=BernoulliDemand(0.4),
                forgetting=0.9 if i % 3 == 0 else 1.0,
            )
            for i in range(64)
        ]

    baselines = None
    for threads in ("1", "3", "8"):
        monkeypatch.setenv("REPRO_SIM_THREADS", threads)
        sim = Simulation(configs(), seed=11, engine="sparse",
                         feedback_interval=2)
        result = sim.run(25)
        blob = (result.rates.tobytes(), sim.credit_matrix().tobytes())
        if baselines is None:
            baselines = blob
        assert blob == baselines, f"threads={threads} diverged"


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_sparse_equivalence_property(data):
    """Random networks: fast-path and island allocators, any feedback."""
    factories = [
        PeerwiseProportionalAllocator,
        GlobalProportionalAllocator,
        IsolationAllocator,
        EqualSplitAllocator,
        lambda: WithholdingAllocator(0.5),
        lambda: RandomAllocator(seed=5),
    ]
    n = data.draw(st.integers(min_value=1, max_value=7))
    chosen = [
        data.draw(st.sampled_from(factories), label=f"alloc{i}")
        for i in range(n)
    ]
    caps = [
        data.draw(st.floats(min_value=0.0, max_value=2000.0), label=f"cap{i}")
        for i in range(n)
    ]
    gammas = [
        data.draw(st.floats(min_value=0.0, max_value=1.0), label=f"gamma{i}")
        for i in range(n)
    ]
    forgettings = [
        data.draw(st.sampled_from([1.0, 0.9]), label=f"forget{i}")
        for i in range(n)
    ]
    feedback = data.draw(st.integers(min_value=1, max_value=4))
    seed = data.draw(st.integers(min_value=0, max_value=10_000))

    def make_configs():
        return [
            PeerConfig(
                capacity=caps[i],
                demand=BernoulliDemand(gammas[i]),
                allocator=chosen[i](),
                forgetting=forgettings[i],
            )
            for i in range(n)
        ]

    assert_equivalent(make_configs, slots=25, seed=seed,
                      feedback_interval=feedback, engines=ENGINES)


# -- reduced history modes -------------------------------------------------


def _history_configs():
    return [
        PeerConfig(capacity=400.0, demand=BernoulliDemand(0.5)),
        PeerConfig(capacity=StepCapacity([(0, 100.0), (9, 700.0)]),
                   demand=AlwaysOn()),
        PeerConfig(capacity=300.0, demand=ScheduleDemand([(3, 14)])),
    ]


@pytest.mark.parametrize("engine", ["batched", "sparse"])
def test_history_modes_consistent(engine):
    full = Simulation(_history_configs(), seed=4, engine=engine).run(20)
    rates_only = Simulation(_history_configs(), seed=4, engine=engine).run(
        20, history="rates"
    )
    none = Simulation(_history_configs(), seed=4, engine=engine).run(
        20, history="none"
    )

    assert full.rates.tobytes() == rates_only.rates.tobytes()
    assert full.requesting.tobytes() == rates_only.requesting.tobytes()
    assert full.capacities.tobytes() == rates_only.capacities.tobytes()
    assert rates_only.mean_alloc is None

    assert none.rates is None and none.summary is not None
    assert none.slots == full.slots and none.n == full.n
    np.testing.assert_allclose(
        none.summary["rate_sum"], full.rates.sum(axis=0), rtol=1e-12
    )
    np.testing.assert_array_equal(
        none.summary["request_count"], full.requesting.sum(axis=0)
    )
    np.testing.assert_allclose(
        none.mean_download_bandwidth(), full.mean_download_bandwidth(),
        rtol=1e-12,
    )
    np.testing.assert_allclose(
        none.isolation_baseline(), full.isolation_baseline(), rtol=1e-12
    )
    np.testing.assert_allclose(
        none.mean_rate_while_requesting(),
        full.mean_rate_while_requesting(),
        rtol=1e-12,
    )


def test_reduced_history_raises_and_roundtrips():
    sim = Simulation(_history_configs(), seed=4)
    none = sim.run(15, history="none")
    full = Simulation(_history_configs(), seed=4).run(15)
    with pytest.raises(ValueError, match="reduced history"):
        none.smoothed_rates()
    # The streaming summary serves the gains and the final window
    # bit-for-bit; any *other* window still needs per-slot history.
    assert (
        none.gains_over_isolation().tobytes()
        == full.gains_over_isolation().tobytes()
    )
    with pytest.raises(ValueError, match="reduced history"):
        none.window_mean_rates(0, 5)

    # Aggregate results survive the JSON round trip bit-exactly.
    from repro.sim import SimulationResult

    back = SimulationResult.from_dict(none.to_dict())
    assert back.rates is None
    assert back.summary["rate_sum"].tobytes() == none.summary["rate_sum"].tobytes()
    assert (
        back.gains_over_isolation().tobytes()
        == none.gains_over_isolation().tobytes()
    )

    # A summary in the pre-streaming format (no gain record) still
    # raises the reduced-history error rather than mis-reporting.
    blob = none.to_dict()
    for key in ("gain_sum", "window_rate_sum", "window_slots", "jain"):
        blob["summary"].pop(key, None)
    old = SimulationResult.from_dict(blob)
    with pytest.raises(ValueError, match="reduced history"):
        old.gains_over_isolation()
    with pytest.raises(ValueError, match="reduced history"):
        old.window_mean_rates(10, 15)

    with pytest.raises(ValueError, match="record_allocations"):
        Simulation(_history_configs(), seed=4).run(
            5, record_allocations=True, history="rates"
        )
    with pytest.raises(ValueError, match="history"):
        Simulation(_history_configs(), seed=4).run(5, history="bogus")


# -- auto-selection and its trace event ------------------------------------


def test_auto_selects_sparse_past_threshold(monkeypatch):
    from repro.sim import engine as engine_mod

    monkeypatch.setattr(engine_mod, "_SPARSE_N_THRESHOLD", 4)
    configs = [
        PeerConfig(capacity=100.0, demand=BernoulliDemand(0.5))
        for _ in range(6)
    ]
    with obs.observability(tracing=True, reset=True):
        sim = Simulation(configs, engine="auto")
        events = [
            e for e in obs.TRACER.events() if e.name == "sim.engine_selected"
        ]
    assert sim.backend.startswith("sparse")
    (event,) = events
    assert event.fields["engine"] == "sparse"
    assert event.fields["n"] == 6
    assert "threshold" in event.fields["reason"]


def test_auto_keeps_batched_below_threshold():
    configs = [
        PeerConfig(capacity=100.0, demand=AlwaysOn()) for _ in range(3)
    ]
    with obs.observability(tracing=True, reset=True):
        sim = Simulation(configs, engine="auto")
        events = [
            e for e in obs.TRACER.events() if e.name == "sim.engine_selected"
        ]
    assert sim.backend.startswith("batched")
    (event,) = events
    assert event.fields["engine"] == "batched"


def test_auto_considers_available_memory(monkeypatch):
    from repro.sim import engine as engine_mod

    # Pretend the machine has 1 MiB free: even a small dense matrix
    # (3 arrays of 8 n^2 bytes with the 4x headroom factor) won't fit.
    monkeypatch.setattr(
        engine_mod, "_available_memory_bytes", lambda: 1 << 20
    )
    configs = [
        PeerConfig(capacity=100.0, demand=BernoulliDemand(0.5))
        for _ in range(128)
    ]
    sim = Simulation(configs, engine="auto")
    assert sim.backend.startswith("sparse")


# -- scale scenarios --------------------------------------------------------


def test_sparse_population_matches_reference_at_small_n():
    """The cohort scenario itself is engine-agnostic: tiny instance."""
    kwargs = dict(n=40, cohorts=8, givers=4, slots=16, seed=3)
    ref = sparse_population(engine="reference", history="full", **kwargs)
    sparse = sparse_population(engine="sparse", history="full", **kwargs)
    assert ref.rates.tobytes() == sparse.rates.tobytes()
    assert ref.requesting.tobytes() == sparse.requesting.tobytes()


def test_sparse_population_sim_shape_and_accounting():
    sim = sparse_population_sim(n=256, cohorts=16, givers=8, slots=32)
    result = sim.run(32, history="none")
    # Givers never request; every consumer cohort got its slots.
    assert result.summary["request_count"][:8].sum() == 0
    assert result.summary["request_count"][8:].sum() == 32 * (256 - 8) // 16
    assert sim.memory_bytes() > 0
    # At scale the sparse state must undercut even ONE dense credit
    # matrix (8 n^2 bytes); small n is block-buffer dominated, so probe
    # the claim at n=4096 where the dense matrix would be 134 MiB.
    big = sparse_population_sim(
        n=4096, cohorts=16, givers=8, slots=8, engine="sparse"
    )
    big.run(8, history="none")
    assert big.memory_bytes() < 8 * 4096 * 4096 // 4
    with pytest.raises(ValueError):
        sparse_population_sim(n=8, givers=8)
    with pytest.raises(ValueError):
        sparse_population_sim(n=8, cohorts=0)


def test_million_peer_smoke_scaled_down():
    """The smoke scenario's accounting contract at a CI-friendly size."""
    out = million_peer_smoke(n=5000, slots=4, cohorts=64, givers=4)
    assert out["backend"].startswith("sparse")
    assert out["within_cap"]
    assert out["state_bytes"] > 0
    assert out["bytes_per_peer"] < 4096
    assert out["request_slots"] > 0


def test_network_engine_plumbing():
    from repro.sim import FileSharingNetwork

    net = FileSharingNetwork([256.0, 512.0], seed=1, engine="sparse")
    assert net._sim.backend.startswith("sparse")


# -- row eviction under churn (PR 9) ----------------------------------------


def test_evict_age_drops_stale_entries_and_counts_them():
    """Entries unwritten for ``evict_age`` flushes go back to background."""
    from repro.sim import sparse_population_churn

    kwargs = dict(n=200, cohorts=8, givers_per_phase=4, phases=3,
                  phase_slots=8, seed=1, engine="sparse")
    plain = sparse_population_churn(**kwargs)
    plain.run(24, history="none")
    evicting = sparse_population_churn(evict_age=4, **kwargs)
    evicting.run(24, history="none")
    assert plain._ledgers.evicted == 0
    assert evicting._ledgers.evicted > 0
    assert evicting._ledgers.entries < plain._ledgers.entries
    # Eviction keeps explicit entries bounded by the *live* givers:
    # fewer than two generations' worth per consumer row on average.
    consumers = 200 - 3 * 4
    assert evicting._ledgers.entries < consumers * 2 * 4


def test_churn_eviction_is_result_neutral():
    """Departed givers never request, so sweeping the dead entries they
    left in consumer rows cannot change any later allocation — the
    churn scenario buys bounded memory at unchanged output."""
    from repro.sim import sparse_population_churn

    kwargs = dict(n=60, cohorts=4, givers_per_phase=3, phases=2,
                  phase_slots=10, seed=2, engine="sparse")
    plain = sparse_population_churn(**kwargs).run(20, history="none")
    evicting = sparse_population_churn(evict_age=2, **kwargs).run(
        20, history="none"
    )
    assert (
        plain.summary["rate_sum"].tobytes()
        == evicting.summary["rate_sum"].tobytes()
    )


def test_eviction_changes_results_when_a_swept_row_uploads():
    """Eviction is opt-in because it is *not* neutral in general: a peer
    that earned entries while downloading, idled past the age, and then
    uploads weights its requesters by the background again."""

    def configs():
        return [
            PeerConfig(capacity=StepCapacity([(0, 0.0), (15, 500.0)]),
                       demand=ScheduleDemand([(0, 6)])),
            PeerConfig(capacity=300.0, demand=AlwaysOn()),
            PeerConfig(capacity=0.0, demand=AlwaysOn()),
        ]

    plain = Simulation(configs(), seed=0, engine="sparse").run(30)
    evicting = Simulation(
        configs(), seed=0, engine="sparse", evict_age=4
    ).run(30)
    assert plain.rates.tobytes() != evicting.rates.tobytes()


def test_eviction_procs_matches_sparse_bitwise():
    """Sharded eviction sweeps in the same epochs as the local store."""
    from repro.sim import sparse_population_churn

    kwargs = dict(n=120, cohorts=6, givers_per_phase=3, phases=2,
                  phase_slots=8, seed=5, evict_age=3)
    sparse = sparse_population_churn(engine="sparse", **kwargs).run(
        16, history="none"
    )
    with sparse_population_churn(engine="procs", workers=3, **kwargs) as sim:
        procs = sim.run(16, history="none")
    for key in sparse.summary:
        assert (
            np.asarray(sparse.summary[key]).tobytes()
            == np.asarray(procs.summary[key]).tobytes()
        ), key


def test_churn_scenario_validation():
    from repro.sim import sparse_population_churn

    with pytest.raises(ValueError):
        sparse_population_churn(n=1)
    with pytest.raises(ValueError):
        sparse_population_churn(n=10, phases=3, givers_per_phase=4)
    with pytest.raises(ValueError):
        sparse_population_churn(n=10, phase_slots=0)
    with pytest.raises(ValueError):
        sparse_population_churn(n=10, cohorts=0)
