"""Tests for cache-loss repair (geographic robustness made operational)."""

import pytest

from repro.rlnc import CodingParams
from repro.sim import FileSharingNetwork

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)  # k = 8


@pytest.fixture
def net():
    return FileSharingNetwork([300.0] * 4, params=PARAMS, seed=17)


@pytest.fixture
def published(net, rng):
    data = rng.bytes(3 * 1024)
    net.publish(owner=0, name="f", data=data)
    return data


class TestDropPeerData:
    def test_single_file(self, net, published):
        handle = net.registry["f"]
        net.drop_peer_data(2, "f")
        for chunk_id in handle.manifest.chunk_ids:
            assert net.stores[2].count(chunk_id) == 0
            assert net.stores[1].count(chunk_id) == PARAMS.k

    def test_whole_store(self, net, published):
        net.drop_peer_data(2)
        assert net.stores[2].files() == []

    def test_unknown_file(self, net):
        with pytest.raises(KeyError):
            net.drop_peer_data(0, "ghost")


class TestRepair:
    def test_reseeds_lost_bundles(self, net, published):
        handle = net.registry["f"]
        net.drop_peer_data(2, "f")
        stored = net.repair("f", peer=2)
        assert stored == handle.n_chunks * PARAMS.k
        for chunk_id in handle.manifest.chunk_ids:
            assert net.stores[2].count(chunk_id) == PARAMS.k

    def test_repaired_peer_serves_alone(self, net, published):
        net.drop_peer_data(2, "f")
        net.repair("f", peer=2)
        result = net.download(user=1, name="f", peers=[2])
        assert result.complete and result.data == published

    def test_repair_bundle_ids_fresh(self, net, published):
        handle = net.registry["f"]
        chunk_id = handle.manifest.chunk_ids[0]
        original_ids = {
            m.message_id
            for store in net.stores
            for m in store.messages(chunk_id)
        }
        net.drop_peer_data(2, "f")
        net.repair("f", peer=2)
        repaired_ids = {m.message_id for m in net.stores[2].messages(chunk_id)}
        assert repaired_ids.isdisjoint(original_ids)

    def test_repair_is_idempotent_for_healthy_peer(self, net, published):
        stored = net.repair("f", peer=1)
        assert stored == 0  # nothing was missing

    def test_two_rounds_disjoint(self, net, published):
        handle = net.registry["f"]
        chunk_id = handle.manifest.chunk_ids[0]
        net.drop_peer_data(2, "f")
        net.repair("f", peer=2)
        first = {m.message_id for m in net.stores[2].messages(chunk_id)}
        net.drop_peer_data(2, "f")
        net.repair("f", peer=2)
        second = {m.message_id for m in net.stores[2].messages(chunk_id)}
        assert first.isdisjoint(second)

    def test_mixed_old_new_messages_decode_together(self, net, published):
        """A downloader combining surviving originals with repair
        messages must still decode (interchangeability of coded
        messages)."""
        net.drop_peer_data(2, "f")
        net.repair("f", peer=2, message_limit=4)
        # Peer 2 now has only 4 fresh messages per chunk; peer 3 keeps
        # its originals. Downloading from just these two works.
        result = net.download(user=1, name="f", peers=[2, 3])
        assert result.complete and result.data == published

    def test_repair_after_update_uses_current_version(self, net, published):
        edited = bytearray(published)
        edited[0] ^= 1
        net.publish_update(0, "f", bytes(edited))
        net.drop_peer_data(2, "f")
        net.repair("f", peer=2)
        result = net.download(user=1, name="f", peers=[2])
        assert result.complete and result.data == bytes(edited)

    def test_unknown_file(self, net):
        with pytest.raises(KeyError):
            net.repair("ghost", peer=0)
