"""Integration tests for versioned updates through the full network."""

import pytest

from repro.rlnc import CodingParams
from repro.sim import FileSharingNetwork

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)  # k = 8


@pytest.fixture
def net():
    return FileSharingNetwork([200.0, 400.0, 800.0], params=PARAMS, seed=9)


@pytest.fixture
def original(rng):
    return rng.bytes(4 * 1024)


class TestPublishUpdate:
    def test_updated_content_downloads(self, net, original):
        net.publish(owner=0, name="doc", data=original)
        edited = bytearray(original)
        edited[1500] ^= 0xAA  # chunk 1
        result = net.publish_update(0, "doc", bytes(edited))
        assert result.changed_chunks == (1,)
        download = net.download(user=0, name="doc")
        assert download.complete
        assert download.data == bytes(edited)

    def test_version_advances(self, net, original):
        handle = net.publish(owner=0, name="doc", data=original)
        assert handle.version == 0
        net.publish_update(0, "doc", original[:-1] + b"\x00")
        assert handle.version == 1
        net.publish_update(0, "doc", original)
        assert handle.version == 2

    def test_stale_messages_dropped_from_stores(self, net, original):
        handle = net.publish(owner=0, name="doc", data=original)
        old_ids = handle.manifest.chunk_ids
        edited = bytearray(original)
        edited[0] ^= 1  # chunk 0
        net.publish_update(0, "doc", bytes(edited))
        for store in net.stores:
            assert not store.has_file(old_ids[0])
            # unchanged chunks keep their stored messages
            assert store.count(old_ids[1]) == PARAMS.k

    def test_only_changed_chunks_reseeded(self, net, original):
        handle = net.publish(owner=0, name="doc", data=original)
        wire_before = handle.wire_bytes
        edited = bytearray(original)
        edited[0] ^= 1
        result = net.publish_update(0, "doc", bytes(edited))
        # one chunk re-seeded to 3 peers
        assert result.upload_savings == pytest.approx(0.75)
        assert handle.wire_bytes == wire_before + result.upload_bytes

    def test_growth_and_shrink_roundtrip(self, net, original, rng):
        net.publish(owner=0, name="doc", data=original)
        grown = original + rng.bytes(500)
        net.publish_update(0, "doc", grown)
        assert net.download(user=1, name="doc").data == grown
        shrunk = grown[:2048]
        net.publish_update(0, "doc", shrunk)
        assert net.download(user=2, name="doc").data == shrunk

    def test_non_owner_rejected(self, net, original):
        net.publish(owner=0, name="doc", data=original)
        with pytest.raises(PermissionError):
            net.publish_update(1, "doc", original)

    def test_unknown_file_rejected(self, net, original):
        with pytest.raises(KeyError):
            net.publish_update(0, "ghost", original)

    def test_noop_update_keeps_everything(self, net, original):
        handle = net.publish(owner=0, name="doc", data=original)
        ids_before = handle.manifest.chunk_ids
        result = net.publish_update(0, "doc", original)
        assert result.upload_bytes == 0
        assert handle.manifest.chunk_ids == ids_before
        assert net.download(user=0, name="doc").data == original
