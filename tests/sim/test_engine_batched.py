"""Bit-identity of the batched engine against the reference slot loop.

The batched engine's contract is not "close": every observable output —
rates, indicators, realised capacities, the full allocation tensor, and
the credit ledgers — must match the reference engine *bit for bit*, for
any mix of honest, baseline, and adversarial allocators, with delayed
feedback, forgetting, declared lies, and time-varying capacity.  These
tests enforce that contract for both the native-kernel and pure-numpy
batched paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ColluderAllocator,
    EqualSplitAllocator,
    FreeRiderAllocator,
    GlobalProportionalAllocator,
    IsolationAllocator,
    PeerwiseProportionalAllocator,
    RandomAllocator,
    SelfHoarderAllocator,
    WithholdingAllocator,
)
from repro.sim import (
    AlwaysOn,
    BernoulliDemand,
    NeverRequests,
    PeerConfig,
    ScheduleDemand,
    Simulation,
    StepCapacity,
)
from repro.sim.traces import DiurnalDemand, FlashCrowdDemand, TraceDemand


def assert_equivalent(
    make_configs,
    slots=40,
    seed=3,
    engines=("reference", "batched"),
    **sim_kwargs,
):
    """Run each engine on freshly built configs and compare all bits.

    ``make_configs`` is a zero-argument factory: stateful allocators
    (e.g. :class:`RandomAllocator`) must be fresh per engine so all
    runs consume identical private streams.  The first engine listed is
    the oracle every other engine is compared against.
    """
    sims = {}
    results = {}
    for engine in engines:
        sim = Simulation(make_configs(), seed=seed, engine=engine, **sim_kwargs)
        results[engine] = sim.run(slots, record_allocations=True)
        sims[engine] = sim
    oracle = engines[0]
    ref = results[oracle]
    ref_credit = sims[oracle].credit_matrix()
    for engine in engines[1:]:
        got = results[engine]
        assert ref.rates.tobytes() == got.rates.tobytes(), engine
        assert ref.requesting.tobytes() == got.requesting.tobytes(), engine
        assert ref.capacities.tobytes() == got.capacities.tobytes(), engine
        assert ref.alloc_history.tobytes() == got.alloc_history.tobytes(), engine
        assert ref.mean_alloc.tobytes() == got.mean_alloc.tobytes(), engine
        assert ref_credit.tobytes() == sims[engine].credit_matrix().tobytes(), engine
    return ref


def adversarial_configs():
    """A deliberately nasty 9-peer mix exercising every engine path."""
    return [
        PeerConfig(capacity=800.0, demand=BernoulliDemand(0.7)),
        PeerConfig(
            capacity=500.0,
            demand=AlwaysOn(),
            allocator=GlobalProportionalAllocator(),
            declared_capacity=4000.0,  # lies upward
        ),
        PeerConfig(capacity=300.0, demand=BernoulliDemand(0.5),
                   allocator=FreeRiderAllocator()),
        PeerConfig(capacity=600.0, demand=AlwaysOn(),
                   allocator=ColluderAllocator([1, 3])),
        PeerConfig(capacity=400.0, demand=BernoulliDemand(0.3),
                   allocator=RandomAllocator(seed=11)),
        PeerConfig(capacity=0.0, demand=AlwaysOn()),
        PeerConfig(capacity=700.0, demand=NeverRequests(), forgetting=0.95),
        PeerConfig(
            capacity=StepCapacity([(0, 200.0), (10, 0.0), (25, 900.0)]),
            demand=ScheduleDemand([(5, 30)]),
            allocator=WithholdingAllocator(0.4),
        ),
        PeerConfig(capacity=250.0, demand=BernoulliDemand(0.9),
                   allocator=EqualSplitAllocator()),
    ]


@pytest.mark.parametrize("feedback_interval", [1, 3])
@pytest.mark.parametrize("slot_seconds", [1.0, 10.0])
def test_adversarial_mix_bit_identical(feedback_interval, slot_seconds):
    assert_equivalent(
        adversarial_configs,
        slots=37,
        feedback_interval=feedback_interval,
        slot_seconds=slot_seconds,
    )


def test_numpy_fallback_bit_identical(monkeypatch):
    """With the native kernels disabled the batched path must still match."""
    from repro.sim import engine as engine_mod

    monkeypatch.setattr(engine_mod.fastpath, "load", lambda: None)
    sim = Simulation(adversarial_configs(), engine="batched")
    assert sim.backend == "batched"
    assert_equivalent(adversarial_configs, slots=31, feedback_interval=2)


def test_time_varying_demand_bit_identical():
    def configs():
        return [
            PeerConfig(capacity=500.0,
                       demand=DiurnalDemand(slot_seconds=600.0)),
            PeerConfig(capacity=300.0,
                       demand=FlashCrowdDemand(0.2, 0.95, 10, 25)),
            PeerConfig(capacity=400.0,
                       demand=TraceDemand([1, 0, 1, 1, 0], wrap=False)),
            PeerConfig(capacity=200.0, demand=BernoulliDemand(0.6)),
        ]

    assert_equivalent(configs, slots=300, slot_seconds=600.0)


def test_long_run_crosses_block_boundaries():
    """More slots than the demand/capacity prefetch block (256)."""
    def configs():
        return [
            PeerConfig(capacity=400.0, demand=BernoulliDemand(0.5)),
            PeerConfig(capacity=StepCapacity([(0, 100.0), (300, 700.0)]),
                       demand=AlwaysOn()),
        ]

    assert_equivalent(configs, slots=600)


def test_auto_engine_is_batched():
    configs = [PeerConfig(capacity=100.0, demand=AlwaysOn())]
    assert Simulation(configs, engine="auto").backend.startswith("batched")
    assert Simulation(configs, engine="reference").backend == "reference"
    with pytest.raises(ValueError):
        Simulation(configs, engine="bogus")


def test_single_peer_and_all_idle():
    assert_equivalent(
        lambda: [PeerConfig(capacity=100.0, demand=AlwaysOn())], slots=10
    )
    assert_equivalent(
        lambda: [
            PeerConfig(capacity=100.0, demand=NeverRequests()),
            PeerConfig(capacity=200.0, demand=NeverRequests()),
        ],
        slots=10,
    )


ALLOCATOR_FACTORIES = [
    PeerwiseProportionalAllocator,
    GlobalProportionalAllocator,
    IsolationAllocator,
    EqualSplitAllocator,
    FreeRiderAllocator,
    SelfHoarderAllocator,
    lambda: WithholdingAllocator(0.5),
    lambda: RandomAllocator(seed=5),
]


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_equivalence_property(data):
    """Random networks: any allocator mix, demand, and feedback delay."""
    n = data.draw(st.integers(min_value=1, max_value=7))
    chosen = [
        data.draw(st.sampled_from(ALLOCATOR_FACTORIES), label=f"alloc{i}")
        for i in range(n)
    ]
    caps = [
        data.draw(
            st.floats(min_value=0.0, max_value=2000.0), label=f"cap{i}"
        )
        for i in range(n)
    ]
    gammas = [
        data.draw(st.floats(min_value=0.0, max_value=1.0), label=f"gamma{i}")
        for i in range(n)
    ]
    forgettings = [
        data.draw(st.sampled_from([1.0, 0.9]), label=f"forget{i}")
        for i in range(n)
    ]
    feedback = data.draw(st.integers(min_value=1, max_value=4))
    seed = data.draw(st.integers(min_value=0, max_value=10_000))

    def make_configs():
        return [
            PeerConfig(
                capacity=caps[i],
                demand=BernoulliDemand(gammas[i]),
                allocator=chosen[i](),
                forgetting=forgettings[i],
            )
            for i in range(n)
        ]

    assert_equivalent(make_configs, slots=25, seed=seed,
                      feedback_interval=feedback)


def test_history_dtype_option():
    """``history_dtype`` shrinks the recorded tensor without touching
    anything else; the default stays float64."""
    configs = [
        PeerConfig(capacity=300.0, demand=AlwaysOn()),
        PeerConfig(capacity=700.0, demand=BernoulliDemand(0.5)),
    ]
    default = Simulation(configs, seed=1).run(12, record_allocations=True)
    assert default.alloc_history.dtype == np.float64

    f32 = Simulation(configs, seed=1).run(
        12, record_allocations=True, history_dtype=np.float32
    )
    assert f32.alloc_history.dtype == np.float32
    assert f32.rates.dtype == np.float64  # rates stay full precision
    np.testing.assert_allclose(
        f32.alloc_history, default.alloc_history, rtol=1e-6
    )

    plain = Simulation(configs, seed=1).run(12, history_dtype=np.float32)
    assert plain.alloc_history is None
