"""The runtime-compiled allocation kernels and their fallback gating.

The native library is optional: everything must work (identically) with
``load()`` returning ``None``.  When it does load, every kernel must be
bit-identical to the numpy implementation it replaces — that is the
self-check's own gate, re-verified here directly so a kernel bug fails
a named test instead of silently downgrading the engine.
"""

import numpy as np
import pytest

from repro.core.allocation import (
    PeerwiseProportionalAllocator,
    enforce_feasibility_rows,
)
from repro.core.baselines import GlobalProportionalAllocator
from repro.sim import fastpath

kernels = fastpath.load()
needs_native = pytest.mark.skipif(
    kernels is None, reason="no C compiler / native kernels unavailable"
)


@needs_native
class TestKernelsBitIdentical:
    def test_pairwise_sum_matches_numpy(self):
        rng = np.random.default_rng(1)
        for n in (0, 1, 7, 8, 9, 127, 128, 129, 1000, 4099):
            a = (rng.random(n) - 0.3) * 1e6
            got = kernels.pairwise_sum(a)
            if n == 0:
                assert got == 0.0
            else:
                assert got == a.sum()

    def _random_case(self, rng):
        n = int(rng.integers(1, 40))
        ledger = rng.random((n, n)) * rng.choice([1e-6, 1.0, 1e9])
        ledger[rng.random((n, n)) < 0.2] = 0.0
        req = rng.random(n) < 0.7
        caps = rng.random(n) * rng.choice([0.0, 5e-324, 1.0, 2000.0])
        declared = rng.random(n) * 1000.0
        return n, ledger, req, caps, declared

    def test_eq2_rows_match_numpy(self):
        rng = np.random.default_rng(2)
        eq2 = PeerwiseProportionalAllocator()
        for _ in range(30):
            n, ledger, req, caps, declared = self._random_case(rng)
            idx = np.arange(n)
            want = enforce_feasibility_rows(
                eq2.allocate_rows(idx, caps, req, ledger, declared, 0),
                caps, req,
            )
            got = np.empty((n, n))
            kernels.alloc_rows_eq2(
                ledger, req.view(np.uint8), caps,
                np.arange(n, dtype=np.int64), got,
            )
            assert got.tobytes() == want.tobytes()

    def test_eq3_rows_match_numpy(self):
        rng = np.random.default_rng(3)
        eq3 = GlobalProportionalAllocator()
        for _ in range(30):
            n, ledger, req, caps, declared = self._random_case(rng)
            idx = np.arange(n)
            want = enforce_feasibility_rows(
                eq3.allocate_rows(idx, caps, req, ledger, declared, 0),
                caps, req,
            )
            weights = np.where(req, declared, 0.0)
            got = np.empty((n, n))
            kernels.alloc_rows_shared(
                weights, weights.sum(), req.view(np.uint8), caps,
                np.arange(n, dtype=np.int64), got,
            )
            assert got.tobytes() == want.tobytes()

    def test_ledger_tadd_matches_numpy(self):
        rng = np.random.default_rng(4)
        for n in (1, 7, 63, 64, 65, 200):
            ledger = rng.random((n, n))
            alloc = rng.random((n, n)) * 100.0
            for w in (1.0, 0.3, 10.0):
                want = ledger + alloc.T * w
                got = ledger.copy()
                kernels.ledger_tadd(got, alloc, w)
                assert got.tobytes() == want.tobytes()

    def test_partial_row_subsets(self):
        """Kernels fill only the rows they are given."""
        rng = np.random.default_rng(5)
        n = 12
        ledger = rng.random((n, n))
        req = np.ones(n, dtype=bool)
        caps = rng.random(n) * 100.0
        rows = np.array([2, 5, 11], dtype=np.int64)
        out = np.full((n, n), -1.0)
        kernels.alloc_rows_eq2(ledger, req.view(np.uint8), caps, rows, out)
        untouched = np.setdiff1d(np.arange(n), rows)
        assert np.all(out[untouched] == -1.0)
        assert np.all(out[rows] >= 0.0)


class TestGating:
    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        monkeypatch.setattr(fastpath, "_RESOLVED", False)
        monkeypatch.setattr(fastpath, "_CACHED", None)
        assert fastpath.load() is None

    def test_no_compiler_means_fallback(self, monkeypatch):
        monkeypatch.setattr(fastpath, "_compiler", lambda: None)
        monkeypatch.setattr(fastpath, "_RESOLVED", False)
        monkeypatch.setattr(fastpath, "_CACHED", None)
        assert fastpath.load() is None

    def test_load_is_memoized(self):
        assert fastpath.load() is fastpath.load()

    @needs_native
    def test_self_check_accepts_good_kernels(self):
        assert fastpath._self_check(kernels)
