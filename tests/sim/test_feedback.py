"""Tests for delayed ledger feedback (periodic informational updates).

The paper's user "contacts its corresponding peer periodically with
informational updates" and "this step can be done off-line" — so a
peer's ledger may lag the true received-bandwidth measurements.  The
engine models this with ``feedback_interval``.
"""

import numpy as np
import pytest

from repro.core import check_theorem1
from repro.sim import AlwaysOn, BernoulliDemand, PeerConfig, Simulation


def saturated(caps, **kwargs):
    return Simulation(
        [PeerConfig(capacity=c, demand=AlwaysOn()) for c in caps], **kwargs
    )


class TestMechanics:
    def test_interval_one_is_default_behaviour(self):
        a = saturated([100.0, 200.0], feedback_interval=1)
        b = saturated([100.0, 200.0])
        ra = a.run(100)
        rb = b.run(100)
        assert np.array_equal(ra.rates, rb.rates)

    def test_ledger_frozen_between_updates(self):
        sim = saturated([100.0, 200.0], feedback_interval=10)
        initial = sim.peers[0].ledger.credits.copy()
        for _ in range(9):
            sim.step()
            assert np.array_equal(sim.peers[0].ledger.credits, initial)
        sim.step()  # slot 10 flushes the batch
        assert not np.array_equal(sim.peers[0].ledger.credits, initial)

    def test_batch_conserves_measurements(self):
        """Nothing is lost in the buffer: after a flush boundary, each
        ledger holds exactly the sum of what its user received."""
        from repro.core import DEFAULT_INITIAL_CREDIT

        sim = saturated([100.0, 300.0], feedback_interval=5)
        result = sim.run(5, record_allocations=True)
        received = result.alloc_history.sum(axis=0)  # [from, to] totals
        for j in range(2):
            expected = received[:, j] + DEFAULT_INITIAL_CREDIT
            assert np.allclose(sim.peers[j].ledger.credits, expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            saturated([1.0], feedback_interval=0)


class TestConvergenceWithDelay:
    @pytest.mark.parametrize("interval", [10, 100])
    def test_saturated_fixed_point_unchanged(self, interval):
        """Delayed feedback slows adaptation but must not move the
        fixed point: saturated rates still converge to capacities."""
        caps = [128.0, 256.0, 1024.0]
        sim = saturated(caps, feedback_interval=interval)
        result = sim.run(3000)
        final = result.window_mean_rates(2500, 3000)
        assert np.allclose(final, caps, rtol=0.06)

    def test_theorem1_survives_delay(self):
        configs = [
            PeerConfig(capacity=c, demand=BernoulliDemand(g))
            for c, g in zip([100.0, 300.0, 500.0], [0.4, 0.6, 0.8])
        ]
        result = Simulation(configs, seed=13, feedback_interval=50).run(15_000)
        report = check_theorem1(
            result.mean_capacity(), result.empirical_gamma(), result.mean_alloc
        )
        assert report.satisfied(tolerance=10.0)
