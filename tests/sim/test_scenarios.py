"""Integration-level tests of the paper scenario library.

These are smaller/faster variants of the benchmark assertions — enough
to catch regressions in every figure's setup without benchmark-scale
runtimes.
"""

import numpy as np
import pytest

from repro.core import FreeRiderAllocator, check_theorem1
from repro.sim import (
    FIG5A_CAPACITIES,
    FIG5B_CAPACITIES,
    FIG6_CAPACITIES,
    bernoulli_network,
    figure_5a,
    figure_5b,
    figure_6,
    figure_7,
    figure_8a,
    figure_8b,
)


class TestFig5:
    def test_5a_converges_to_capacities(self):
        result = figure_5a(slots=1500)
        final = result.window_mean_rates(1200, 1500)
        assert np.allclose(final, FIG5A_CAPACITIES, rtol=0.06)

    def test_5b_dominant_peer_fairness(self):
        result = figure_5b(slots=1500)
        final = result.window_mean_rates(1200, 1500)
        assert np.allclose(final, FIG5B_CAPACITIES, rtol=0.06)

    def test_5a_capacity_labels(self):
        result = figure_5a(slots=10)
        assert "1000" in result.label_of(9)


class TestFig67:
    def test_fig6_gains_positive(self):
        result = figure_6(seed=1, slot_seconds=30.0)
        assert np.all(result.gains_over_isolation() > 0)

    def test_fig6_duty_cycle_half(self):
        result = figure_6(seed=1, slot_seconds=30.0)
        assert np.allclose(result.empirical_gamma(), 0.5, atol=0.01)

    def test_fig7_late_join_capacity_profile(self):
        result = figure_7(seed=1, slot_seconds=30.0)
        per_hour = int(3600 / 30.0)
        assert np.all(result.capacities[: 3 * per_hour, 1] == 0.0)
        assert np.all(result.capacities[3 * per_hour :, 1] == FIG6_CAPACITIES[1])

    def test_fig7_penalises_late_joiner(self):
        reference = figure_6(seed=1, slot_seconds=30.0)
        late = figure_7(seed=1, slot_seconds=30.0)
        req = late.requesting[:, 1]
        assert (
            late.rates[req, 1].mean() < reference.rates[req, 1].mean()
        )


class TestFig8:
    def test_8a_credit_advantage(self):
        result = figure_8a(slots=2000)
        post = result.window_mean_rates(1100, 2000)
        assert post[0] > post[1]

    def test_8a_idle_bandwidth_consumed_by_others(self):
        result = figure_8a(slots=1200)
        pre = result.window_mean_rates(200, 1000)
        assert pre[0] == 0.0 and pre[1] == 0.0
        assert pre[2:].mean() > 1024.0

    def test_8b_drop_and_recovery_direction(self):
        result = figure_8b(slots=5000)
        dropped = result.window_mean_rates(2500, 3000)[0]
        recovering = result.window_mean_rates(4500, 5000)[0]
        assert dropped < 1024.0 * 0.85
        assert recovering > dropped


class TestBernoulliNetwork:
    def test_theorem1_on_default_network(self):
        result = bernoulli_network(
            [100, 200, 300], [0.4, 0.6, 0.8], slots=8000, seed=2
        )
        report = check_theorem1(
            result.mean_capacity(), result.empirical_gamma(), result.mean_alloc
        )
        assert report.satisfied(tolerance=5.0)

    def test_adversary_override(self):
        result = bernoulli_network(
            [100, 100],
            [0.5, 0.5],
            slots=2000,
            seed=2,
            allocators={0: FreeRiderAllocator()},
        )
        # Peer 0 never serves anyone.
        assert result.mean_alloc[0].sum() == 0.0

    def test_baseline_switch(self):
        iso = bernoulli_network([100, 100], [1.0, 1.0], slots=100, baseline="isolation")
        assert np.allclose(iso.rates, 100.0)

    def test_declared_override_only_affects_eq3(self):
        a = bernoulli_network([100, 100], [1.0, 1.0], slots=500, declared={0: 1e6})
        assert np.allclose(a.window_mean_rates(400, 500), [100.0, 100.0], rtol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            bernoulli_network([100], [0.5, 0.5])


class TestFaultyNetwork:
    def _plan(self, spec):
        from repro.faults import FaultPlan

        return FaultPlan.parse(spec)

    def test_refused_peer_never_contributes(self):
        from repro.sim import faulty_network

        result = faulty_network(plan=self._plan("0:refuse"), slots=1000)
        assert np.all(result.capacities[:, 0] == 0.0)
        assert "faulty: refuse" in result.label_of(0)

    def test_crash_goes_dark_and_stays_dark(self):
        from repro.sim import faulty_network

        # 512 kbps = 64 kB/slot; crash at 6.4 MB -> offline from slot 100.
        result = faulty_network(plan=self._plan("0:crash@6400000"), slots=1000)
        assert np.all(result.capacities[:100, 0] == 512.0)
        assert np.all(result.capacities[100:, 0] == 0.0)

    def test_stall_is_temporary(self):
        from repro.sim import faulty_network

        result = faulty_network(plan=self._plan("0:stall@100+50"), slots=300)
        assert np.all(result.capacities[:100, 0] == 512.0)
        assert np.all(result.capacities[100:150, 0] == 0.0)
        assert np.all(result.capacities[150:, 0] == 512.0)

    def test_pollute_keeps_capacity(self):
        from repro.sim import faulty_network

        polluted = faulty_network(plan=self._plan("0:pollute"), slots=500, seed=3)
        clean = faulty_network(slots=500, seed=3)
        # Pollution is a transfer-layer fault: the bandwidth-sharing
        # dynamics are untouched (same capacities, same rates).
        assert np.array_equal(polluted.capacities, clean.capacities)
        assert np.array_equal(polluted.rates, clean.rates)

    def test_healthy_peers_keep_earning(self):
        from repro.sim import faulty_network

        result = faulty_network(plan=self._plan("0:refuse;1:refuse"), slots=2000)
        rates = result.mean_download_bandwidth()
        assert all(rates[i] > 0 for i in range(2, 6))

    def test_plan_out_of_range_rejected(self):
        from repro.sim import faulty_network

        with pytest.raises(ValueError):
            faulty_network(plan=self._plan("9:refuse"), n=6, slots=100)
