"""Tests for trace-driven and non-stationary demand processes."""

import numpy as np
import pytest

from repro.sim import (
    DiurnalDemand,
    FlashCrowdDemand,
    PeerConfig,
    Simulation,
    TraceDemand,
)


@pytest.fixture
def demand_rng():
    return np.random.default_rng(9)


class TestTraceDemand:
    def test_replay_exact(self, demand_rng):
        trace = [True, False, True, True]
        d = TraceDemand(trace)
        assert [d.sample(t, demand_rng) for t in range(4)] == trace

    def test_wrap(self, demand_rng):
        d = TraceDemand([True, False])
        assert d.sample(2, demand_rng) is True
        assert d.sample(3, demand_rng) is False

    def test_no_wrap_goes_idle(self, demand_rng):
        d = TraceDemand([True], wrap=False)
        assert d.sample(0, demand_rng)
        assert not d.sample(1, demand_rng)

    def test_gamma_is_trace_mean(self):
        assert TraceDemand([True, True, False, False]).gamma == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceDemand([])
        with pytest.raises(ValueError):
            TraceDemand([[True]])


class TestDiurnalDemand:
    def test_peak_and_trough(self):
        d = DiurnalDemand(peak_gamma=0.9, trough_gamma=0.1, peak_hour=20,
                          slot_seconds=3600.0)
        assert d.gamma_at(20) == pytest.approx(0.9)
        assert d.gamma_at(8) == pytest.approx(0.1)  # 12 h opposite

    def test_period_is_24h(self):
        d = DiurnalDemand(slot_seconds=3600.0)
        assert d.gamma_at(5) == pytest.approx(d.gamma_at(5 + 24))

    def test_bounds_respected(self):
        d = DiurnalDemand(peak_gamma=0.7, trough_gamma=0.2, slot_seconds=60.0)
        gammas = [d.gamma_at(t) for t in range(0, 1440, 7)]
        assert min(gammas) >= 0.2 - 1e-9
        assert max(gammas) <= 0.7 + 1e-9

    def test_empirical_rate_tracks_gamma(self, demand_rng):
        d = DiurnalDemand(peak_gamma=0.9, trough_gamma=0.1, peak_hour=12,
                          slot_seconds=1.0)
        noon = sum(d.sample(12 * 3600 + i, demand_rng) for i in range(3000)) / 3000
        midnight = sum(d.sample(i, demand_rng) for i in range(3000)) / 3000
        assert noon > 0.8
        assert midnight < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalDemand(peak_gamma=0.1, trough_gamma=0.5)
        with pytest.raises(ValueError):
            DiurnalDemand(slot_seconds=0)


class TestFlashCrowd:
    def test_surge_window(self):
        d = FlashCrowdDemand(base_gamma=0.0, surge_gamma=1.0,
                             surge_start=10, surge_end=20)
        rng = np.random.default_rng(0)
        assert not d.sample(9, rng)
        assert d.sample(10, rng)
        assert d.sample(19, rng)
        assert not d.sample(20, rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdDemand(base_gamma=2.0)
        with pytest.raises(ValueError):
            FlashCrowdDemand(surge_start=5, surge_end=1)


class TestInSimulation:
    def test_flash_crowd_rates_track_demand(self):
        """During a flash crowd the surging users split the network;
        before it they idle and others profit."""
        n = 6
        configs = [
            PeerConfig(
                capacity=300.0,
                demand=FlashCrowdDemand(
                    base_gamma=0.0, surge_gamma=1.0,
                    surge_start=2000, surge_end=4000,
                ),
            )
            for _ in range(n // 2)
        ]
        configs += [
            PeerConfig(capacity=300.0, demand=True) for _ in range(n // 2)
        ]
        result = Simulation(configs, seed=3).run(4000)
        before = result.window_mean_rates(500, 2000)
        during = result.window_mean_rates(2500, 4000)
        # Pre-surge: the always-on half shares everything (> own capacity).
        assert before[n // 2 :].mean() > 300.0 * 1.5
        assert np.allclose(before[: n // 2], 0.0)
        # During the surge everyone is busy: rates fall back toward own
        # contributions.
        assert during[n // 2 :].mean() < before[n // 2 :].mean()
        assert during[: n // 2].mean() > 0

    def test_diurnal_day_gains_off_peak(self):
        configs = [
            PeerConfig(
                capacity=200.0,
                demand=DiurnalDemand(
                    peak_gamma=0.9, trough_gamma=0.05,
                    peak_hour=6 * (i + 1) % 24, slot_seconds=60.0,
                ),
            )
            for i in range(4)
        ]
        result = Simulation(configs, seed=1, slot_seconds=60.0).run(1440)
        # Staggered peaks: every user averages above isolation while
        # requesting because others' troughs free bandwidth.
        gains = result.gains_over_isolation()
        assert np.all(gains > 0)
