"""Unit tests for the time-slotted simulation engine."""

import numpy as np
import pytest

from repro.core import FreeRiderAllocator, IsolationAllocator
from repro.sim import AlwaysOn, BernoulliDemand, NeverRequests, PeerConfig, Simulation


def saturated(caps, **kwargs):
    return Simulation(
        [PeerConfig(capacity=c, demand=AlwaysOn()) for c in caps], **kwargs
    )


class TestStep:
    def test_allocation_matrix_shape(self):
        sim = saturated([100.0, 200.0])
        alloc, requesting, caps = sim.step()
        assert alloc.shape == (2, 2)
        assert requesting.tolist() == [True, True]
        assert caps.tolist() == [100.0, 200.0]

    def test_capacity_conserved(self):
        sim = saturated([100.0, 200.0, 300.0])
        for _ in range(20):
            alloc, _, caps = sim.step()
            assert np.all(alloc.sum(axis=1) <= caps + 1e-9)
            assert np.all(alloc >= 0)

    def test_slot_counter_advances(self):
        sim = saturated([10.0])
        assert sim.t == 0
        sim.step()
        sim.step()
        assert sim.t == 2

    def test_idle_users_receive_nothing(self):
        sim = Simulation(
            [
                PeerConfig(capacity=100.0, demand=AlwaysOn()),
                PeerConfig(capacity=100.0, demand=NeverRequests()),
            ]
        )
        for _ in range(10):
            alloc, _, _ = sim.step()
            assert np.all(alloc[:, 1] == 0.0)

    def test_ledgers_credited(self):
        sim = saturated([100.0, 100.0])
        before = sim.peers[0].ledger.total()
        sim.step()
        assert sim.peers[0].ledger.total() > before

    def test_slot_seconds_scales_credit(self):
        fast = saturated([100.0, 100.0], slot_seconds=1.0)
        slow = saturated([100.0, 100.0], slot_seconds=10.0)
        fast.step()
        slow.step()
        assert slow.peers[0].ledger.total() == pytest.approx(
            10 * fast.peers[0].ledger.total(), rel=1e-6
        )


class TestRun:
    def test_result_shapes(self):
        result = saturated([10.0, 20.0]).run(50)
        assert result.rates.shape == (50, 2)
        assert result.requesting.shape == (50, 2)
        assert result.capacities.shape == (50, 2)
        assert result.mean_alloc.shape == (2, 2)
        assert result.alloc_history is None

    def test_record_allocations(self):
        result = saturated([10.0, 20.0]).run(5, record_allocations=True)
        assert result.alloc_history.shape == (5, 2, 2)
        assert np.allclose(result.alloc_history.mean(axis=0), result.mean_alloc)

    def test_rates_are_column_sums(self):
        result = saturated([10.0, 20.0]).run(5, record_allocations=True)
        assert np.allclose(result.rates, result.alloc_history.sum(axis=1))

    def test_runs_continue(self):
        sim = saturated([10.0])
        sim.run(10)
        assert sim.t == 10
        sim.run(5)
        assert sim.t == 15

    def test_deterministic_given_seed(self):
        def run():
            sim = Simulation(
                [PeerConfig(capacity=100.0, demand=BernoulliDemand(0.5)) for _ in range(3)],
                seed=42,
            )
            return sim.run(200)

        a, b = run(), run()
        assert np.array_equal(a.rates, b.rates)
        assert np.array_equal(a.requesting, b.requesting)

    def test_seeds_differ(self):
        def run(seed):
            sim = Simulation(
                [PeerConfig(capacity=100.0, demand=BernoulliDemand(0.5)) for _ in range(3)],
                seed=seed,
            )
            return sim.run(200)

        assert not np.array_equal(run(1).requesting, run(2).requesting)

    def test_validation(self):
        with pytest.raises(ValueError):
            Simulation([])
        with pytest.raises(ValueError):
            saturated([1.0]).run(0)
        with pytest.raises(ValueError):
            Simulation([PeerConfig(capacity=1.0, demand=True)], slot_seconds=0)


class TestConservationInvariants:
    def test_total_rate_bounded_by_total_capacity(self):
        result = saturated([128.0, 256.0, 1024.0]).run(300)
        assert np.all(result.rates.sum(axis=1) <= result.capacities.sum(axis=1) + 1e-9)

    def test_saturated_capacity_fully_used(self):
        """When everyone requests, Equation (2) leaves nothing idle."""
        result = saturated([128.0, 256.0, 1024.0]).run(300)
        assert np.allclose(
            result.rates.sum(axis=1), result.capacities.sum(axis=1), rtol=1e-9
        )

    def test_free_rider_capacity_withheld(self):
        sim = Simulation(
            [
                PeerConfig(capacity=100.0, demand=AlwaysOn(), allocator=FreeRiderAllocator()),
                PeerConfig(capacity=100.0, demand=AlwaysOn()),
            ]
        )
        result = sim.run(100)
        # Total delivered < total capacity: the free rider serves no one.
        assert result.rates.sum() <= 100.0 * 100 + 1e-6

    def test_isolation_allocator_gives_own_capacity(self):
        sim = Simulation(
            [
                PeerConfig(capacity=100.0, demand=AlwaysOn(), allocator=IsolationAllocator()),
                PeerConfig(capacity=50.0, demand=AlwaysOn(), allocator=IsolationAllocator()),
            ]
        )
        result = sim.run(20)
        assert np.allclose(result.rates, [[100.0, 50.0]] * 20)
