"""Unit tests for capacity profiles."""

import pytest

from repro.sim import ConstantCapacity, StepCapacity, as_capacity


class TestConstant:
    def test_value(self):
        assert ConstantCapacity(256.0).value(0) == 256.0
        assert ConstantCapacity(256.0).value(10**9) == 256.0

    def test_mean(self):
        assert ConstantCapacity(100.0).mean(50) == 100.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantCapacity(-1.0)


class TestStep:
    def test_fig8b_profile(self):
        profile = StepCapacity([(0, 1024.0), (1000, 512.0), (3000, 1024.0)])
        assert profile.value(0) == 1024.0
        assert profile.value(999) == 1024.0
        assert profile.value(1000) == 512.0
        assert profile.value(2999) == 512.0
        assert profile.value(3000) == 1024.0

    def test_before_first_step_is_zero(self):
        profile = StepCapacity([(100, 512.0)])
        assert profile.value(0) == 0.0
        assert profile.value(99) == 0.0
        assert profile.value(100) == 512.0

    def test_unsorted_input_ok(self):
        profile = StepCapacity([(50, 2.0), (0, 1.0)])
        assert profile.value(10) == 1.0
        assert profile.value(60) == 2.0

    def test_mean(self):
        profile = StepCapacity([(0, 10.0), (5, 20.0)])
        assert profile.mean(10) == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepCapacity([])
        with pytest.raises(ValueError):
            StepCapacity([(0, -1.0)])
        with pytest.raises(ValueError):
            StepCapacity([(0, 1.0), (0, 2.0)])

    def test_mean_validation(self):
        with pytest.raises(ValueError):
            ConstantCapacity(1.0).mean(0)


class TestAsCapacity:
    def test_coercions(self):
        assert isinstance(as_capacity(100), ConstantCapacity)
        p = StepCapacity([(0, 1.0)])
        assert as_capacity(p) is p

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            as_capacity("fast")
