"""Failure injection: corruption, forgery, churn and starvation.

The system must degrade predictably: corrupted messages are filtered,
missing peers are routed around, insufficient data fails loudly (never a
silent wrong decode), and an impostor is turned away at the handshake.
"""

import numpy as np
import pytest

from repro.rlnc import CodingParams, FileEncoder, Offer, ProgressiveDecoder
from repro.security import DigestStore, generate_keypair
from repro.storage import MessageStore
from repro.transfer import (
    DownloadSession,
    ParallelDownloader,
    ProtocolError,
    ServingSession,
)

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0x55


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=512, seed=55)


def encode(rng, n_peers=3):
    data = rng.bytes(500)
    digests = DigestStore()
    encoder = FileEncoder(PARAMS, b"owner", file_id=FILE_ID)
    encoded = encoder.encode_bundles(data, n_peers=n_peers, digest_store=digests)
    return data, encoder, encoded, digests


class TestCorruption:
    def test_all_peers_corrupt_download_never_lies(self, rng, keys):
        """If every source is corrupt, the download must fail visibly —
        never return wrong bytes."""
        data, encoder, encoded, digests = encode(rng)
        sessions = []
        for bundle in encoded.bundles:
            store = MessageStore()
            store.add_messages(
                [m.with_payload(np.asarray(m.payload) ^ 1) for m in bundle]
            )
            s = ServingSession(store, keys.public)
            DownloadSession(keys).handshake(s, FILE_ID)
            sessions.append(s)
        decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
        report = ParallelDownloader(sessions, decoder, lambda i, t: 1000.0).run(200)
        assert not report.complete
        assert report.messages_rejected == 3 * PARAMS.k
        assert decoder.rank == 0

    def test_bit_flip_in_single_symbol_detected(self, rng):
        data, encoder, encoded, digests = encode(rng)
        decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
        msg = encoded.bundles[0][0]
        for position in (0, PARAMS.m // 2, PARAMS.m - 1):
            tampered_payload = np.asarray(msg.payload).copy()
            tampered_payload[position] ^= 1
            assert decoder.offer(msg.with_payload(tampered_payload)) == Offer.REJECTED

    def test_header_swap_detected(self, rng):
        """Replaying a valid payload under a different message id fails
        authentication (digests bind id to payload)."""
        data, encoder, encoded, digests = encode(rng)
        decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
        a, b = encoded.bundles[0][0], encoded.bundles[0][1]
        swapped = type(a)(
            file_id=a.file_id, message_id=b.message_id, payload=a.payload, p=a.p
        )
        assert decoder.offer(swapped) == Offer.REJECTED


class TestChurn:
    def test_peer_loss_mid_download_recovers_from_others(self, rng, keys):
        data, encoder, encoded, digests = encode(rng)
        sessions = []
        for bundle in encoded.bundles:
            store = MessageStore()
            store.add_messages(bundle)
            s = ServingSession(store, keys.public)
            DownloadSession(keys).handshake(s, FILE_ID)
            sessions.append(s)

        # Peer 0 dies after slot 2 (rate drops to zero forever).
        def rate_fn(i, t):
            if i == 0 and t >= 2:
                return 0.0
            return 60.0  # slow enough that slot 2 arrives mid-transfer

        decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
        report = ParallelDownloader(sessions, decoder, rate_fn).run(10_000)
        assert report.complete
        assert decoder.result(len(data)) == data

    def test_exhausted_peers_insufficient_rank_fails_cleanly(self, rng, keys):
        data, encoder, encoded, digests = encode(rng)
        store = MessageStore()
        store.add_messages(encoded.bundles[0], limit=PARAMS.k - 2)
        s = ServingSession(store, keys.public)
        DownloadSession(keys).handshake(s, FILE_ID)
        decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
        report = ParallelDownloader([s], decoder, lambda i, t: 1e6).run(50)
        assert not report.complete
        assert decoder.needed == 2


class TestImpostor:
    def test_impostor_rejected_before_any_bytes(self, rng, keys):
        data, encoder, encoded, digests = encode(rng)
        store = MessageStore()
        store.add_messages(encoded.bundles[0])
        serving = ServingSession(store, keys.public)
        impostor = generate_keypair(bits=512, seed=999)
        with pytest.raises(ProtocolError):
            DownloadSession(impostor).handshake(serving, FILE_ID)
        assert serving.bytes_sent == 0.0
        with pytest.raises(ProtocolError):
            serving.serve(1000)


class TestWrongKeyDecoding:
    def test_wrong_secret_never_silently_succeeds(self, rng):
        """A peer that guesses the wrong secret cannot distinguish a
        correct guess: decoding 'works' but yields garbage, and with
        digests the garbage is detectable by the owner only."""
        data, encoder, encoded, digests = encode(rng)
        attacker = FileEncoder(PARAMS, b"not-the-owner", file_id=FILE_ID)
        decoder = ProgressiveDecoder(PARAMS, attacker.coefficients)
        for msg in encoded.bundles[0]:
            decoder.offer(msg)
        if decoder.is_complete:
            assert decoder.result(len(data)) != data
