"""The acceptance scenario for failure-aware downloads.

A fault plan injecting at least one polluting peer and one mid-stream
crash among four or more peers must leave the robust downloader able to
complete the decode with a bit-identical payload, with zero polluted
messages reaching the decoder, and with a report whose taxonomy names
the faulty peers.

``REPRO_FAULT_SEED`` overrides the plan seed (the CI fault matrix runs
three of them); ``REPRO_FAULT_TRACE`` names a JSONL file to dump the
structured trace into, which CI uploads when the job fails.
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultPlan
from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore, generate_keypair
from repro.storage import MessageStore
from repro.transfer import (
    DownloadSession,
    ParallelDownloader,
    RobustPolicy,
    ServingSession,
)

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0xACCE
SEED = int(os.environ.get("REPRO_FAULT_SEED", "7"))

#: The acceptance plan: 5 peers — one polluter, one mid-stream crash,
#: one permanent stall, two honest.  At 2 kbps (250 B/slot) and a wire
#: size of 80 B (p=16, m=32), the crash at byte 150 cuts peer 2 off
#: after exactly one whole message — a genuine mid-stream death.
PLAN_SPEC = f"seed={SEED};1:pollute;2:crash@150;3:stall@0+10000"
N_PEERS = 5


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=512, seed=SEED)


def build(plan, keys, data_seed=0xC0FFEE):
    rng = np.random.default_rng(data_seed)
    data = rng.bytes(500)
    digests = DigestStore()
    encoder = FileEncoder(PARAMS, b"owner", file_id=FILE_ID)
    encoded = encoder.encode_bundles(data, n_peers=N_PEERS, digest_store=digests)
    sessions = []
    for p in range(N_PEERS):
        store = MessageStore()
        store.add_messages(encoded.bundles[p])
        sessions.append(ServingSession(store, keys.public))
    sessions = plan.wrap(sessions)
    for p, session in enumerate(sessions):
        DownloadSession(keys).handshake_with_retry(session, FILE_ID, peer=p)
    decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
    return data, sessions, decoder, digests


def download(plan, keys, stall_timeout=2):
    data, sessions, decoder, digests = build(plan, keys)
    policy = RobustPolicy(digest_store=digests, stall_timeout_slots=stall_timeout)
    dl = ParallelDownloader(sessions, decoder, lambda i, t: 2.0, policy=policy)
    report = dl.run(10_000, file_id=FILE_ID)
    return data, decoder, report


@pytest.fixture()
def traced():
    """Run the body under tracing; dump JSONL if REPRO_FAULT_TRACE is set."""
    path = os.environ.get("REPRO_FAULT_TRACE")
    with obs.observability(tracing=True, reset=True):
        yield
        if path:
            obs.TRACER.write_jsonl(path)


class TestAcceptance:
    def test_decode_completes_bit_identical(self, keys, traced):
        plan = FaultPlan.parse(PLAN_SPEC)
        data, decoder, report = download(plan, keys)
        assert report.complete
        assert decoder.result(len(data)) == data

    def test_zero_polluted_messages_reach_decoder(self, keys, traced):
        plan = FaultPlan.parse(PLAN_SPEC)
        data, decoder, report = download(plan, keys)
        # Digest verification happens upstream of the decoder: the
        # decoder never saw a forged row, so it never rejected one.
        assert decoder.rejected == 0
        assert decoder.inconsistent == 0
        assert report.messages_rejected == 0
        assert report.failure_of(1).messages_discarded >= 1

    def test_taxonomy_names_every_faulty_peer(self, keys, traced):
        plan = FaultPlan.parse(PLAN_SPEC)
        data, decoder, report = download(plan, keys)
        kinds = {f.peer: f.kind for f in report.failures}
        assert kinds[1] == "polluted"
        assert kinds[2] == "crashed"
        assert kinds[3] == "stalled"
        assert 0 not in kinds and 4 not in kinds  # honest peers unnamed
        assert report.bytes_discarded > 0

    def test_trace_records_faults_and_discards(self, keys):
        with obs.observability(tracing=True, reset=True):
            plan = FaultPlan.parse(PLAN_SPEC)
            download(plan, keys)
            events = [e.to_dict() for e in obs.TRACER.events()]
        names = {e["name"] for e in events}
        assert "transfer.fault" in names
        assert "transfer.discard" in names
        faults = [e for e in events if e["name"] == "transfer.fault"]
        assert {f["fields"]["kind"] for f in faults} >= {"polluted", "crashed"}
        # Every event round-trips through JSON (the CI artifact format).
        for e in events:
            json.dumps(e)

    def test_same_seed_same_outcome(self, keys):
        plan = FaultPlan.parse(PLAN_SPEC)
        a = download(plan, keys)
        b = download(plan, keys)
        assert a[2].to_dict() == b[2].to_dict()
        assert a[0] == b[0]

    def test_refusal_joins_the_taxonomy(self, keys):
        plan = FaultPlan.parse(PLAN_SPEC + ";4:refuse")
        data, decoder, report = download(plan, keys)
        assert report.complete
        assert decoder.result(len(data)) == data
        assert report.failure_of(4).kind == "refused"
        assert report.per_peer_bytes[4] == 0.0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_robust_across_seeds(self, keys, seed):
        plan = FaultPlan.parse(f"seed={seed};1:pollute@0.7;2:crash@300")
        data, decoder, report = download(plan, keys)
        assert report.complete
        assert decoder.result(len(data)) == data
        assert decoder.rejected == 0
