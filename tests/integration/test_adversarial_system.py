"""System-level adversarial scenarios: the paper's fairness/incentive
claims under hostile strategy mixes (Section IV-C, Section V-A)."""

import numpy as np
import pytest

from repro.core import (
    ColluderAllocator,
    FreeRiderAllocator,
    RandomAllocator,
    SelfHoarderAllocator,
    WithholdingAllocator,
    check_theorem1,
    jain_index,
)
from repro.sim import bernoulli_network

N = 8
CAPS = [400.0] * N
GAMMAS = [0.5] * N
SLOTS = 12_000


def run(allocators=None, seed=31):
    return bernoulli_network(CAPS, GAMMAS, slots=SLOTS, seed=seed, allocators=allocators)


def honest_indices(adversaries):
    return [i for i in range(N) if i not in (adversaries or {})]


class TestIncentiveUnderAttack:
    @pytest.mark.parametrize(
        "adversaries",
        [
            {0: FreeRiderAllocator()},
            {0: SelfHoarderAllocator()},
            {0: WithholdingAllocator(0.25)},
            {0: RandomAllocator(seed=3)},
            {0: ColluderAllocator([0, 1, 2]), 1: ColluderAllocator([0, 1, 2]),
             2: ColluderAllocator([0, 1, 2])},
            {0: FreeRiderAllocator(), 1: SelfHoarderAllocator(),
             2: RandomAllocator(seed=9)},
        ],
        ids=["freerider", "hoarder", "withhold", "random", "coalition", "mixed"],
    )
    def test_theorem1_for_honest_users(self, adversaries):
        result = run(adversaries)
        report = check_theorem1(
            result.mean_capacity(), result.empirical_gamma(), result.mean_alloc
        )
        tol = 0.03 * np.asarray(CAPS)
        for i in honest_indices(adversaries):
            assert report.slack[i] >= -tol[i], (i, report.slack)

    def test_honest_users_unharmed_by_free_rider(self):
        clean = run()
        attacked = run({0: FreeRiderAllocator()})
        honest = honest_indices({0: None})
        clean_rates = clean.mean_download_bandwidth()[honest]
        attacked_rates = attacked.mean_download_bandwidth()[honest]
        # Honest users lose only the free rider's withheld capacity share,
        # never dropping below isolation.
        iso = np.asarray(CAPS)[honest] * np.asarray(GAMMAS)[honest]
        assert np.all(attacked_rates >= iso - 0.03 * np.asarray(CAPS)[honest])
        # And they keep most of their clean-network service.
        assert np.all(attacked_rates > 0.75 * clean_rates)


class TestStarvation:
    def test_free_rider_starves(self):
        result = run({0: FreeRiderAllocator()})
        rates = result.mean_download_bandwidth()
        # The free rider earns only epsilon-credit service.
        assert rates[0] < 0.1 * rates[1:].mean()

    def test_hoarder_self_limits(self):
        result = run({0: SelfHoarderAllocator()})
        rates = result.mean_download_bandwidth()
        iso = CAPS[0] * GAMMAS[0]
        # A hoarder gets roughly isolation service (its own capacity when
        # requesting) and no more than a modest bonus from stale credits.
        assert rates[0] == pytest.approx(iso, rel=0.25)

    def test_withholding_degrades_proportionally(self):
        full = run()
        half = run({0: WithholdingAllocator(0.5)})
        quarter = run({0: WithholdingAllocator(0.25)})
        r_full = full.mean_download_bandwidth()[0]
        r_half = half.mean_download_bandwidth()[0]
        r_quarter = quarter.mean_download_bandwidth()[0]
        assert r_full > r_half > r_quarter
        # no cliff: quarter-contribution still earns meaningful service
        assert r_quarter > 0.25 * r_full


class TestCoalition:
    def test_coalition_cannot_beat_contribution_share(self):
        coalition = {
            0: ColluderAllocator([0, 1]),
            1: ColluderAllocator([0, 1]),
        }
        result = run(coalition)
        rates = result.mean_download_bandwidth()
        honest = rates[2:].mean()
        # Colluders concentrate their own capacity on themselves but lose
        # honest peers' free bandwidth; they cannot do better than honest
        # peers of equal capacity.
        assert rates[0] <= honest * 1.05
        assert rates[1] <= honest * 1.05

    def test_fairness_among_honest_survives_coalition(self):
        coalition = {
            0: ColluderAllocator([0, 1]),
            1: ColluderAllocator([0, 1]),
        }
        result = run(coalition)
        honest_rates = result.mean_download_bandwidth()[2:]
        assert jain_index(honest_rates) > 0.99
