"""End-to-end integration: the complete publish -> share -> download flow.

These tests exercise every subsystem together: keyed RLNC encoding over
GF, digest recording, message stores, authenticated serving sessions,
Equation (2) allocation inside the live network, parallel transfer,
progressive decoding, and chunked streaming.
"""

import numpy as np
import pytest

from repro.rlnc import CodingParams
from repro.sim import FileSharingNetwork

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)


class TestFullPipeline:
    def test_multi_chunk_multi_peer_roundtrip(self, rng):
        data = rng.bytes(5000)  # 5 chunks
        net = FileSharingNetwork([256.0, 512.0, 1024.0, 768.0], params=PARAMS, seed=6)
        handle = net.publish(owner=0, name="video", data=data)
        assert handle.n_chunks == 5
        result = net.download(user=0, name="video")
        assert result.complete
        assert result.data == data
        assert len(result.reports) == 5

    def test_empty_file(self, rng):
        net = FileSharingNetwork([100.0, 100.0], params=PARAMS, seed=6)
        net.publish(owner=0, name="empty", data=b"")
        result = net.download(user=0, name="empty")
        assert result.complete
        assert result.data == b""

    def test_exact_chunk_boundary(self, rng):
        data = rng.bytes(PARAMS.file_bytes * 2)
        net = FileSharingNetwork([100.0, 100.0], params=PARAMS, seed=6)
        handle = net.publish(owner=0, name="f", data=data)
        assert handle.n_chunks == 2
        assert net.download(user=0, name="f").data == data

    def test_multiple_files_and_owners(self, rng):
        net = FileSharingNetwork([200.0, 200.0, 200.0], params=PARAMS, seed=6)
        files = {}
        for owner in range(3):
            blob = rng.bytes(1500 + owner * 100)
            files[f"file-{owner}"] = blob
            net.publish(owner=owner, name=f"file-{owner}", data=blob)
        for owner in range(3):
            got = net.download(user=owner, name=f"file-{owner}")
            assert got.data == files[f"file-{owner}"]

    def test_sequential_downloads_accumulate_credit(self, rng):
        data = rng.bytes(2000)
        net = FileSharingNetwork([200.0, 200.0, 200.0], params=PARAMS, seed=6)
        net.publish(owner=0, name="f", data=data)
        first = net.download(user=0, name="f")
        ledger_after_first = net.ledger_of(0).credits.copy()
        second = net.download(user=0, name="f")
        assert second.data == data
        assert net.ledger_of(0).credits.sum() > ledger_after_first.sum()

    def test_contention_still_decodes(self, rng):
        data = rng.bytes(2000)
        net = FileSharingNetwork(
            [200.0] * 5, params=PARAMS, seed=6, background_gamma=0.5
        )
        net.publish(owner=0, name="f", data=data)
        result = net.download(user=0, name="f")
        assert result.complete and result.data == data

    def test_download_cap_slows_but_completes(self, rng):
        # Chunks download sequentially, so the uncapped run needs at
        # least one slot per chunk; a 2 kbps cap (250 B/slot) forces
        # several slots per ~1.2 kB chunk bundle instead.
        data = rng.bytes(4000)
        net = FileSharingNetwork([200.0] * 4, params=PARAMS, seed=6)
        net.publish(owner=0, name="f", data=data)
        fast = net.download(user=0, name="f", download_cap_kbps=10_000.0)

        net2 = FileSharingNetwork([200.0] * 4, params=PARAMS, seed=6)
        net2.publish(owner=0, name="f", data=data)
        slow = net2.download(user=0, name="f", download_cap_kbps=2.0)
        assert fast.complete and slow.complete
        assert slow.slots > fast.slots

    def test_mean_rate_consistent_with_bytes(self, rng):
        data = rng.bytes(2000)
        net = FileSharingNetwork([200.0] * 3, params=PARAMS, seed=6)
        net.publish(owner=0, name="f", data=data)
        result = net.download(user=0, name="f")
        manual = result.bytes_received * 8 / 1000 / result.slots
        assert result.mean_rate_kbps() == pytest.approx(manual)


class TestStorageIntegration:
    def test_dat_persistence_roundtrip_through_network(self, rng, tmp_path):
        """Peers can persist their stores to File-id.dat and reload."""
        data = rng.bytes(1024)
        net = FileSharingNetwork([100.0, 100.0], params=PARAMS, seed=6)
        handle = net.publish(owner=0, name="f", data=data)
        chunk_id = handle.manifest.chunk_ids[0]

        paths = net.stores[1].save_dat(str(tmp_path))
        from repro.storage import MessageStore

        reloaded = MessageStore()
        for path in paths:
            reloaded.load_dat(path, p=PARAMS.p, m=PARAMS.m)
        original = net.stores[1].messages(chunk_id)
        restored = reloaded.messages(chunk_id)
        assert [m.message_id for m in original] == [m.message_id for m in restored]
        for a, b in zip(original, restored):
            assert np.array_equal(a.payload, b.payload)
