"""Unit tests for the Chord-style content-location substrate."""

import math

import numpy as np
import pytest

from repro.discovery import ChordRing, PeerDirectory, chord_id


def ring_with(n, bits=16, replication=1, seed=0):
    ring = ChordRing(bits=bits, replication=replication)
    rng = np.random.default_rng(seed)
    ids = rng.choice(1 << bits, size=n, replace=False)
    for i, nid in enumerate(ids):
        ring.join(f"peer-{i}", node_id=int(nid))
    return ring


class TestChordId:
    def test_deterministic(self):
        assert chord_id("abc") == chord_id("abc")

    def test_within_space(self):
        for key in ("a", 123, b"xyz"):
            assert 0 <= chord_id(key, bits=10) < 1024

    def test_distinct_types_distinct_ids(self):
        # str and int keys hash through different encodings.
        assert chord_id("1", 32) != chord_id(1, 32)


class TestMembership:
    def test_join_sorted(self):
        ring = ring_with(20)
        assert ring.node_ids == sorted(ring.node_ids)
        assert len(ring) == 20

    def test_duplicate_id_rejected(self):
        ring = ChordRing(bits=8)
        ring.join("a", node_id=5)
        with pytest.raises(ValueError):
            ring.join("b", node_id=5)

    def test_labels(self):
        ring = ChordRing(bits=8)
        nid = ring.join("home-pc", node_id=77)
        assert ring.label_of(nid) == "home-pc"

    def test_leave_unknown(self):
        with pytest.raises(KeyError):
            ChordRing(bits=8).leave(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChordRing(bits=2)
        with pytest.raises(ValueError):
            ChordRing(replication=0)


class TestSuccessor:
    def test_matches_bruteforce(self):
        ring = ring_with(25, bits=12, seed=3)
        nodes = ring.node_ids
        for key in range(0, 1 << 12, 37):
            expected = min(
                (nid for nid in nodes if nid >= key), default=nodes[0]
            )
            assert ring.successor(key) == expected, key

    def test_wraparound(self):
        ring = ChordRing(bits=8)
        ring.join("a", node_id=10)
        ring.join("b", node_id=200)
        assert ring.successor(201) == 10
        assert ring.successor(10) == 10
        assert ring.successor(11) == 200

    def test_empty_ring(self):
        with pytest.raises(RuntimeError):
            ChordRing(bits=8).successor(1)


class TestLookupRouting:
    def test_owner_correct_from_every_start(self):
        ring = ring_with(15, bits=12, seed=5)
        for start in ring.node_ids[::3]:
            for key in (0, 100, 2000, 4095):
                result = ring.lookup(key, start=start)
                assert result.owner == ring.successor(key)
                assert result.path[0] == start
                assert result.path[-1] == result.owner

    def test_hops_logarithmic(self):
        """Chord's theorem: O(log n) hops w.h.p.; check the average is
        comfortably below 2*log2(n) and the max below 3*log2(n)."""
        n = 128
        ring = ring_with(n, bits=20, seed=7)
        rng = np.random.default_rng(1)
        hops = []
        for _ in range(300):
            start = int(rng.choice(ring.node_ids))
            key = int(rng.integers(0, 1 << 20))
            hops.append(ring.lookup(key, start=start).hops)
        log_n = math.log2(n)
        assert np.mean(hops) < 2 * log_n
        assert max(hops) <= 3 * log_n

    def test_single_node_zero_hops(self):
        ring = ChordRing(bits=8)
        ring.join("solo", node_id=42)
        result = ring.lookup(7)
        assert result.owner == 42
        assert result.hops == 0

    def test_unknown_start(self):
        ring = ring_with(3)
        with pytest.raises(KeyError):
            ring.lookup(5, start=999999)


class TestStorage:
    def test_store_get_roundtrip(self):
        ring = ring_with(10, seed=2)
        ring.store("key-A", "value-A")
        value, result = ring.get("key-A")
        assert value == "value-A"
        assert result.owner == ring.successor(chord_id("key-A", ring.bits))

    def test_missing_key(self):
        ring = ring_with(5)
        value, _ = ring.get("nope")
        assert value is None

    def test_keys_rebalance_on_join(self):
        # 24-bit space: 50 keys collide with probability ~7e-5.
        ring = ring_with(5, bits=24, seed=9)
        for i in range(50):
            ring.store(f"k{i}", i)
        ring.join("newcomer", node_id=next(
            nid for nid in range(1 << 24) if nid not in ring.node_ids
        ))
        for i in range(50):
            value, _ = ring.get(f"k{i}")
            assert value == i

    def test_keys_survive_graceful_leave(self):
        ring = ring_with(8, seed=11)
        for i in range(30):
            ring.store(f"k{i}", i)
        ring.leave(ring.node_ids[3])
        for i in range(30):
            assert ring.get(f"k{i}")[0] == i

    def test_replication_survives_failure(self):
        ring = ring_with(10, replication=3, seed=13)
        ring.store("precious", 42)
        primary = ring.successor(chord_id("precious", ring.bits))
        ring.fail(primary)
        value, _ = ring.get("precious")
        assert value == 42

    def test_no_replication_loses_on_failure(self):
        ring = ring_with(10, replication=1, seed=13)
        ring.store("fragile", 42)
        primary = ring.successor(chord_id("fragile", ring.bits))
        ring.fail(primary)
        value, _ = ring.get("fragile")
        assert value is None


class TestPeerDirectory:
    def test_publish_locate(self):
        ring = ring_with(12, seed=4)
        directory = PeerDirectory(ring)
        directory.publish(0xCAFE, holders=[0, 2, 5])
        holders, result = directory.locate(0xCAFE)
        assert holders == (0, 2, 5)
        assert result.hops >= 0

    def test_unknown_file(self):
        directory = PeerDirectory(ring_with(4))
        holders, _ = directory.locate(0xDEAD)
        assert holders is None

    def test_distinct_files_distinct_records(self):
        directory = PeerDirectory(ring_with(12, seed=4))
        directory.publish(1, holders=[0])
        directory.publish(2, holders=[1])
        assert directory.locate(1)[0] == (0,)
        assert directory.locate(2)[0] == (1,)
