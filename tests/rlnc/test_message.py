"""Unit tests for the encoded-message wire format (Fig. 3)."""

import numpy as np
import pytest

from repro.rlnc import HEADER_BYTES, EncodedMessage, MessageFormatError


def make_message(p=16, m=8, file_id=0xCAFE, message_id=42, rng=None):
    rng = rng or np.random.default_rng(1)
    payload = rng.integers(0, 1 << p, size=m, dtype=np.uint64).astype(np.uint32)
    return EncodedMessage(file_id=file_id, message_id=message_id, payload=payload, p=p)


class TestConstruction:
    def test_basic_fields(self):
        msg = make_message()
        assert msg.file_id == 0xCAFE
        assert msg.message_id == 42
        assert msg.m == 8
        assert msg.p == 16

    def test_payload_is_read_only(self):
        msg = make_message()
        with pytest.raises(ValueError):
            np.asarray(msg.payload)[0] = 1

    @pytest.mark.parametrize("bad_id", [-1, 1 << 64])
    def test_id_range_enforced(self, bad_id):
        with pytest.raises(MessageFormatError):
            EncodedMessage(
                file_id=bad_id, message_id=0,
                payload=np.zeros(4, dtype=np.uint32), p=8,
            )
        with pytest.raises(MessageFormatError):
            EncodedMessage(
                file_id=0, message_id=bad_id,
                payload=np.zeros(4, dtype=np.uint32), p=8,
            )


class TestWireFormat:
    @pytest.mark.parametrize("p,m", [(4, 6), (8, 10), (16, 7), (32, 3)])
    def test_roundtrip(self, p, m, rng):
        msg = make_message(p=p, m=m, rng=rng)
        wire = msg.to_bytes()
        parsed = EncodedMessage.from_bytes(wire, p=p)
        assert parsed.file_id == msg.file_id
        assert parsed.message_id == msg.message_id
        assert np.array_equal(parsed.payload, msg.payload)

    def test_header_layout(self):
        msg = make_message(file_id=1, message_id=2)
        wire = msg.to_bytes()
        assert wire[:8] == (1).to_bytes(8, "big")
        assert wire[8:16] == (2).to_bytes(8, "big")

    def test_wire_size(self):
        msg = make_message(p=16, m=8)
        assert msg.wire_size() == HEADER_BYTES + 16
        assert len(msg.to_bytes()) == msg.wire_size()

    def test_truncated_wire_raises(self):
        with pytest.raises(MessageFormatError):
            EncodedMessage.from_bytes(b"\x00" * 10, p=8)

    def test_max_ids_roundtrip(self):
        big = (1 << 64) - 1
        msg = EncodedMessage(
            file_id=big, message_id=big, payload=np.zeros(2, dtype=np.uint32), p=8
        )
        parsed = EncodedMessage.from_bytes(msg.to_bytes(), p=8)
        assert parsed.file_id == big and parsed.message_id == big


class TestHelpers:
    def test_with_payload_copies_identity(self):
        msg = make_message()
        other = msg.with_payload(np.asarray(msg.payload).copy() ^ 1)
        assert other.file_id == msg.file_id
        assert other.message_id == msg.message_id
        assert not np.array_equal(other.payload, msg.payload)

    def test_payload_bytes_match_wire_tail(self):
        msg = make_message()
        assert msg.to_bytes()[HEADER_BYTES:] == msg.payload_bytes()
