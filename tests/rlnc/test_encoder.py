"""Unit tests for the file encoder and bundle screening."""

import numpy as np
import pytest

from repro.gf import GF, rank
from repro.rlnc import CodingParams, FileEncoder
from repro.security import DigestStore

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)  # k = 8


@pytest.fixture
def encoder():
    return FileEncoder(PARAMS, secret=b"owner", file_id=0xABCD)


@pytest.fixture
def data(rng):
    return rng.bytes(1000)


class TestSourceMatrix:
    def test_shape(self, encoder, data):
        X = encoder.source_matrix(data)
        assert X.shape == (PARAMS.k, PARAMS.m)

    def test_too_large_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.source_matrix(b"x" * (PARAMS.file_bytes + 1))

    def test_field_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FileEncoder(PARAMS, b"s", 1, field=GF(8))


class TestEncodeMessage:
    def test_equation_1(self, encoder, data):
        """Y_i must equal sum_j beta_ij X_j exactly (Equation (1))."""
        X = encoder.source_matrix(data)
        F = encoder.field
        for mid in (0, 3, 17):
            msg = encoder.encode_message(X, mid)
            beta = encoder.coefficients.row(mid)
            expected = F.zeros(PARAMS.m)
            for j in range(PARAMS.k):
                expected ^= F.mul(beta[j], X[j])
            assert np.array_equal(msg.payload, expected)
            assert msg.file_id == 0xABCD
            assert msg.message_id == mid

    def test_zero_file_encodes_to_zero(self, encoder):
        X = encoder.source_matrix(b"")
        msg = encoder.encode_message(X, 0)
        assert np.all(np.asarray(msg.payload) == 0)

    def test_linearity(self, encoder, rng):
        """Encoding is linear: enc(a ^ b) = enc(a) ^ enc(b)."""
        a = rng.bytes(1024)
        b = rng.bytes(1024)
        ab = bytes(x ^ y for x, y in zip(a, b))
        Xa = encoder.source_matrix(a)
        Xb = encoder.source_matrix(b)
        Xab = encoder.source_matrix(ab)
        ya = encoder.encode_message(Xa, 5).payload
        yb = encoder.encode_message(Xb, 5).payload
        yab = encoder.encode_message(Xab, 5).payload
        assert np.array_equal(np.asarray(ya) ^ np.asarray(yb), yab)


class TestIndependentIds:
    def test_bundles_have_k_ids(self, encoder):
        bundles = encoder.independent_ids(3)
        assert len(bundles) == 3
        assert all(len(b) == PARAMS.k for b in bundles)

    def test_bundles_disjoint_and_increasing(self, encoder):
        bundles = encoder.independent_ids(4)
        flat = [i for b in bundles for i in b]
        assert len(set(flat)) == len(flat)
        assert flat == sorted(flat)

    def test_every_bundle_invertible(self, encoder):
        F = encoder.field
        for ids in encoder.independent_ids(5):
            M = encoder.coefficients.matrix(ids)
            assert rank(F, M) == PARAMS.k

    def test_small_field_bundles_still_invertible(self):
        # GF(2^4) with k = 8: dependent rows are common (k/q = 0.5),
        # so the screening must actually skip some ids.
        params = CodingParams(p=4, m=16, file_bytes=64)
        enc = FileEncoder(params, b"s", 1)
        bundles = enc.independent_ids(200)
        F = enc.field
        for ids in bundles[:20]:  # spot-check invertibility
            assert rank(F, enc.coefficients.matrix(ids)) == params.k
        flat = [i for b in bundles for i in b]
        # Over 200 bundles at q=16 the expected number of rejected
        # candidate ids is ~14; zero rejections would mean the screening
        # is not actually running (P ~ 1e-6).
        assert max(flat) >= len(flat)

    def test_start_id_respected(self, encoder):
        bundles = encoder.independent_ids(1, start_id=1000)
        assert min(bundles[0]) >= 1000


class TestEncodeBundles:
    def test_structure(self, encoder, data):
        encoded = encoder.encode_bundles(data, n_peers=4)
        assert len(encoded.bundles) == 4
        assert encoded.messages_per_bundle == PARAMS.k
        assert encoded.length == len(data)
        assert len(encoded.all_messages()) == 4 * PARAMS.k

    def test_digests_recorded(self, encoder, data):
        store = DigestStore()
        encoded = encoder.encode_bundles(data, n_peers=3, digest_store=store)
        assert len(store) == 3 * PARAMS.k
        msg = encoded.bundles[1][2]
        assert store.verify(msg.file_id, msg.message_id, msg.payload_bytes())

    def test_needs_at_least_one_peer(self, encoder, data):
        with pytest.raises(ValueError):
            encoder.encode_bundles(data, n_peers=0)

    def test_nk_messages_total(self, encoder, data):
        # Section III-A: nk coded messages for an n-peer network.
        n = 6
        encoded = encoder.encode_bundles(data, n_peers=n)
        assert len(encoded.all_messages()) == n * PARAMS.k
