"""Batched ``offer_many`` must be indistinguishable from a sequential loop.

The oracle is a twin decoder fed the same messages one at a time via
``offer``; outcomes, counters, rank trajectory, and the decoded bytes
must match exactly, with observability on and off, for honest traffic,
duplicates, forged payloads, and wrong-file noise.
"""

import numpy as np

from repro.obs import REGISTRY, observability
from repro.rlnc import CodingParams, FileEncoder, Offer, ProgressiveDecoder
from repro.security import DigestStore

PARAMS = CodingParams(p=8, m=64, file_bytes=1024)  # k = 16


def make_stream(rng, with_store=True, forged=0, wrong_file=0, duplicates=0):
    data = rng.bytes(900)
    store = DigestStore() if with_store else None
    encoder = FileEncoder(PARAMS, secret=b"owner", file_id=0xAB)
    encoded = encoder.encode_bundles(data, n_peers=2, digest_store=store)
    msgs = encoded.all_messages()
    rng.shuffle(msgs)
    for i in range(duplicates):
        msgs.insert(int(rng.integers(len(msgs))), msgs[i])
    for i in range(forged):
        victim = msgs[int(rng.integers(len(msgs)))]
        msgs.insert(
            int(rng.integers(len(msgs))),
            victim.with_payload(np.asarray(victim.payload) ^ (i + 1)),
        )
    if wrong_file:
        other = FileEncoder(PARAMS, secret=b"owner", file_id=0xCD)
        noise = other.encode_bundles(rng.bytes(100), 1).bundles[0]
        for i in range(wrong_file):
            msgs.insert(int(rng.integers(len(msgs))), noise[i])
    return data, encoder, store, msgs


def assert_equivalent(encoder, store, msgs, data, batch_sizes):
    """Feed ``msgs`` to a batched and a sequential decoder; compare all."""
    batched = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
    sequential = ProgressiveDecoder(PARAMS, encoder.coefficients, store)

    seq_outcomes = []
    for msg in msgs:
        if sequential.is_complete:
            break
        seq_outcomes.append(sequential.offer(msg))

    batch_outcomes = []
    queue = list(msgs)
    sizes = list(batch_sizes)
    while queue:
        size = sizes.pop(0) if sizes else len(queue)
        chunk, queue = queue[:size], queue[size:]
        batch_outcomes.extend(batched.offer_many(chunk))

    assert batch_outcomes == seq_outcomes
    for attr in ("accepted", "dependent", "rejected", "inconsistent", "rank"):
        assert getattr(batched, attr) == getattr(sequential, attr), attr
    assert batched.is_complete == sequential.is_complete
    if batched.is_complete:
        assert batched.result(len(data)) == data
        assert batched.result() == sequential.result()
    return batched


class TestOfferManyEquivalence:
    def test_honest_stream(self, rng):
        data, encoder, store, msgs = make_stream(rng)
        assert_equivalent(encoder, store, msgs, data, [3, 1, 7])

    def test_single_big_batch(self, rng):
        data, encoder, store, msgs = make_stream(rng)
        dec = assert_equivalent(encoder, store, msgs, data, [len(msgs)])
        assert dec.is_complete

    def test_adversarial_stream(self, rng):
        data, encoder, store, msgs = make_stream(
            rng, forged=4, wrong_file=2, duplicates=3
        )
        assert_equivalent(encoder, store, msgs, data, [5, 5, 5, 5])

    def test_no_digest_store(self, rng):
        data, encoder, _, msgs = make_stream(
            rng, with_store=False, duplicates=2
        )
        assert_equivalent(encoder, None, msgs, data, [4, 4])

    def test_batch_with_duplicate_inside_batch(self, rng):
        """Two copies of one id in the same batch: second is DEPENDENT."""
        data, encoder, store, msgs = make_stream(rng)
        doubled = [msgs[0], msgs[0]] + msgs[1:]
        assert_equivalent(encoder, store, doubled, data, [2, 6])

    def test_consumes_nothing_when_complete(self, rng):
        data, encoder, store, msgs = make_stream(rng)
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
        dec.offer_many(msgs)
        assert dec.is_complete
        assert dec.offer_many(msgs) == []

    def test_consumed_prefix_stops_at_complete(self, rng):
        data, encoder, store, msgs = make_stream(rng)
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
        outcomes = dec.offer_many(msgs)
        assert outcomes[-1] == Offer.COMPLETE
        assert len(outcomes) <= len(msgs)
        assert dec.result(len(data)) == data

    def test_equivalent_with_observability_on(self, rng):
        data, encoder, store, msgs = make_stream(rng, forged=2, duplicates=2)
        with observability(reset=True):
            assert_equivalent(encoder, store, msgs, data, [6, 6, 6])
            snap = REGISTRY.snapshot()
        # Both decoders count into the same registry, so totals are even.
        innovative = snap["repro.rlnc.decode.innovative"]["value"]
        assert innovative == 2 * PARAMS.k
        assert snap["repro.rlnc.decode.batches"]["value"] >= 1

    def test_empty_batch(self, rng):
        _, encoder, store, _ = make_stream(rng)
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
        assert dec.offer_many([]) == []
        assert dec.rank == 0


class TestOfferManyMatchesSequentialReference:
    def test_many_random_interleavings(self, rng):
        """Stress: random batch splits over an adversarial stream."""
        for trial in range(5):
            data, encoder, store, msgs = make_stream(
                rng, forged=trial, duplicates=trial % 3, wrong_file=trial % 2
            )
            sizes = [int(s) for s in rng.integers(1, 6, size=12)]
            assert_equivalent(encoder, store, msgs, data, sizes)
