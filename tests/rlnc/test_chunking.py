"""Unit tests for 1 MB chunking, manifests and streaming reassembly."""

import numpy as np
import pytest

from repro.rlnc import (
    ChunkedEncoder,
    CodingParams,
    FileManifest,
    Offer,
    StreamingDecoder,
    derive_chunk_id,
    split_chunks,
)
from repro.security import DigestStore

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8, tiny "1MB"


class TestSplitChunks:
    def test_even_split(self):
        chunks = split_chunks(b"a" * 1024, 256)
        assert len(chunks) == 4
        assert all(len(c) == 256 for c in chunks)

    def test_ragged_tail(self):
        chunks = split_chunks(b"a" * 1000, 256)
        assert len(chunks) == 4
        assert len(chunks[-1]) == 1000 - 3 * 256

    def test_empty_file_is_one_chunk(self):
        assert split_chunks(b"", 256) == [b""]

    def test_reassembly(self, rng):
        data = rng.bytes(3000)
        assert b"".join(split_chunks(data, 512)) == data

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            split_chunks(b"x", 0)


class TestDeriveChunkId:
    def test_chunk0_keeps_base(self):
        assert derive_chunk_id(0xABC, 0) == 0xABC

    def test_later_chunks_distinct(self):
        ids = {derive_chunk_id(0xABC, i) for i in range(100)}
        assert len(ids) == 100

    def test_deterministic(self):
        assert derive_chunk_id(5, 3) == derive_chunk_id(5, 3)

    def test_fits_64_bits(self):
        assert derive_chunk_id((1 << 64) - 1, 7) < (1 << 64)


class TestManifest:
    def test_roundtrip_dict(self):
        m = FileManifest(
            base_file_id=9,
            total_length=700,
            chunk_bytes=512,
            p=16,
            m=32,
            chunk_ids=(9, 1234),
            chunk_lengths=(512, 188),
        )
        assert FileManifest.from_dict(m.to_dict()) == m

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FileManifest(
                base_file_id=9, total_length=100, chunk_bytes=512,
                p=16, m=32, chunk_ids=(9,), chunk_lengths=(99,),
            )

    def test_alignment_rejected(self):
        with pytest.raises(ValueError):
            FileManifest(
                base_file_id=9, total_length=100, chunk_bytes=512,
                p=16, m=32, chunk_ids=(9, 10), chunk_lengths=(100,),
            )


class TestChunkedEncoder:
    def test_manifest_matches_data(self, rng):
        data = rng.bytes(1800)
        enc = ChunkedEncoder(PARAMS, b"s", base_file_id=3)
        manifest, chunks = enc.encode_file(data, n_peers=2)
        assert manifest.n_chunks == 4
        assert manifest.total_length == len(data)
        assert sum(manifest.chunk_lengths) == len(data)
        assert len(chunks) == 4
        assert manifest.chunk_ids[0] == 3

    def test_per_chunk_secrets_differ(self):
        enc = ChunkedEncoder(PARAMS, b"s", base_file_id=3)
        g0 = enc.coefficient_generator(0)
        g1 = enc.coefficient_generator(1)
        assert not np.array_equal(g0.row(0), g1.row(0))

    def test_single_chunk_small_file(self, rng):
        data = rng.bytes(100)
        enc = ChunkedEncoder(PARAMS, b"s", base_file_id=3)
        manifest, chunks = enc.encode_file(data, n_peers=2)
        assert manifest.n_chunks == 1


class TestStreamingDecoder:
    @pytest.fixture
    def stack(self, rng):
        data = rng.bytes(1500)
        store = DigestStore()
        enc = ChunkedEncoder(PARAMS, b"s", base_file_id=44)
        manifest, chunks = enc.encode_file(data, n_peers=3, digest_store=store)
        return data, enc, manifest, chunks, store

    def test_in_order_streaming(self, stack):
        data, enc, manifest, chunks, store = stack
        dec = StreamingDecoder(manifest, enc, digest_store=store)
        emitted = b""
        for encoded_file in chunks:  # chunk by chunk, in order
            for msg in encoded_file.bundles[0]:
                dec.offer(msg)
            emitted += b"".join(dec.pop_ready())
        assert emitted == data
        assert dec.result() == data

    def test_out_of_order_chunks_buffered(self, stack):
        data, enc, manifest, chunks, store = stack
        dec = StreamingDecoder(manifest, enc, digest_store=store)
        # Complete the LAST chunk first: nothing pops (in-order emission).
        for msg in chunks[-1].bundles[0]:
            dec.offer(msg)
        assert dec.pop_ready() == []
        # Now complete the rest; everything pops in order.
        for encoded_file in chunks[:-1]:
            for msg in encoded_file.bundles[0]:
                dec.offer(msg)
        out = b"".join(dec.pop_ready())
        assert out == data

    def test_unknown_chunk_rejected(self, stack):
        data, enc, manifest, chunks, store = stack
        other_enc = ChunkedEncoder(PARAMS, b"s", base_file_id=999)
        _, other_chunks = other_enc.encode_file(b"x" * 100, n_peers=1)
        dec = StreamingDecoder(manifest, enc, digest_store=store)
        assert dec.offer(other_chunks[0].bundles[0][0]) == Offer.REJECTED

    def test_result_before_complete_raises(self, stack):
        data, enc, manifest, chunks, store = stack
        dec = StreamingDecoder(manifest, enc, digest_store=store)
        with pytest.raises(ValueError):
            dec.result()

    def test_needed_for_chunk(self, stack):
        data, enc, manifest, chunks, store = stack
        dec = StreamingDecoder(manifest, enc, digest_store=store)
        assert dec.needed_for_chunk(0) == PARAMS.k
        dec.offer(chunks[0].bundles[0][0])
        assert dec.needed_for_chunk(0) == PARAMS.k - 1

    def test_mixed_peer_sources(self, stack, rng):
        data, enc, manifest, chunks, store = stack
        dec = StreamingDecoder(manifest, enc, digest_store=store)
        msgs = [m for ef in chunks for bundle in ef.bundles for m in bundle]
        rng.shuffle(msgs)
        for msg in msgs:
            dec.offer(msg)
            if dec.is_complete:
                break
        assert dec.result() == data
