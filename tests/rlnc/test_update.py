"""Unit tests for chunk-level versioned updates."""

import numpy as np
import pytest

from repro.rlnc import CodingParams, VersionedEncoder, VersionedManifest
from repro.rlnc.chunking import derive_chunk_id
from repro.rlnc.update import _versioned_chunk_id
from repro.security import DigestStore

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8


@pytest.fixture
def encoder():
    return VersionedEncoder(PARAMS, b"owner", base_file_id=0xAA)


@pytest.fixture
def original(rng):
    return rng.bytes(4 * 512)  # exactly 4 chunks


class TestVersionedIds:
    def test_version0_matches_plain_chunking(self):
        for i in range(5):
            assert _versioned_chunk_id(0xAA, i, 0) == derive_chunk_id(0xAA, i)

    def test_versions_rotate_ids(self):
        ids = {_versioned_chunk_id(0xAA, 1, v) for v in range(10)}
        assert len(ids) == 10


class TestPublish:
    def test_v0_roundtrip(self, encoder, original):
        manifest, encoded = encoder.publish(original, n_peers=2)
        assert manifest.version == 0
        assert manifest.n_chunks == 4
        pool = [m for ef in encoded for b in ef.bundles for m in b]
        assert encoder.decode_all(manifest, pool) == original

    def test_manifest_dict_roundtrip(self, encoder, original):
        manifest, _ = encoder.publish(original, n_peers=1)
        assert VersionedManifest.from_dict(manifest.to_dict()) == manifest


class TestUpdate:
    def test_single_byte_edit_reencodes_one_chunk(self, encoder, original):
        manifest, _ = encoder.publish(original, n_peers=2)
        edited = bytearray(original)
        edited[600] ^= 0xFF  # inside chunk 1
        result = encoder.update(manifest, bytes(edited), n_peers=2)
        assert result.changed_chunks == (1,)
        assert result.unchanged_chunks == (0, 2, 3)
        assert set(result.reencoded) == {1}
        assert result.manifest.chunk_versions == (0, 1, 0, 0)
        assert result.upload_savings == pytest.approx(0.75)

    def test_stale_ids_reported(self, encoder, original):
        manifest, _ = encoder.publish(original, n_peers=2)
        edited = bytearray(original)
        edited[0] ^= 1
        result = encoder.update(manifest, bytes(edited), n_peers=2)
        assert result.stale_chunk_ids == (derive_chunk_id(0xAA, 0),)

    def test_unchanged_chunk_ids_survive(self, encoder, original):
        manifest, _ = encoder.publish(original, n_peers=1)
        edited = original[:512] + bytes(512) + original[1024:]
        result = encoder.update(manifest, edited, n_peers=1)
        assert result.manifest.chunk_ids[0] == manifest.chunk_ids[0]
        assert result.manifest.chunk_ids[2:] == manifest.chunk_ids[2:]
        assert result.manifest.chunk_ids[1] != manifest.chunk_ids[1]

    def test_updated_file_decodes(self, encoder, original, rng):
        store = DigestStore()
        manifest, encoded = encoder.publish(original, n_peers=2, digest_store=store)
        edited = bytearray(original)
        edited[100] ^= 0x55
        edited[1500] ^= 0x77  # chunks 0 and 2
        result = encoder.update(manifest, bytes(edited), n_peers=2, digest_store=store)
        assert result.changed_chunks == (0, 2)

        # Message pool = surviving old messages + replacement bundles.
        pool = []
        for i, ef in enumerate(encoded):
            if i in result.reencoded:
                ef = result.reencoded[i]
            pool.extend(m for b in ef.bundles for m in b)
        decoded = encoder.decode_all(result.manifest, pool, digest_store=store)
        assert decoded == bytes(edited)

    def test_growth_appends_chunks(self, encoder, original, rng):
        manifest, _ = encoder.publish(original, n_peers=1)
        grown = original + rng.bytes(700)  # +2 chunks
        result = encoder.update(manifest, grown, n_peers=1)
        assert result.manifest.n_chunks == 6
        assert result.changed_chunks == (4, 5)
        assert result.stale_chunk_ids == ()

    def test_shrinkage_retires_chunks(self, encoder, original):
        manifest, _ = encoder.publish(original, n_peers=1)
        shrunk = original[: 2 * 512]
        result = encoder.update(manifest, shrunk, n_peers=1)
        assert result.manifest.n_chunks == 2
        assert result.changed_chunks == ()
        assert len(result.stale_chunk_ids) == 2

    def test_tail_partial_chunk_edit(self, encoder, rng):
        data = rng.bytes(512 + 100)
        manifest, _ = encoder.publish(data, n_peers=1)
        edited = data[:-1] + bytes([data[-1] ^ 1])
        result = encoder.update(manifest, edited, n_peers=1)
        assert result.changed_chunks == (1,)

    def test_sequential_updates_increment_versions(self, encoder, original):
        manifest, _ = encoder.publish(original, n_peers=1)
        v = manifest
        for round_ in range(1, 4):
            edited = bytearray(original)
            edited[0] = round_
            result = encoder.update(v, bytes(edited), n_peers=1)
            v = result.manifest
            assert v.version == round_
            assert v.chunk_versions[0] == round_

    def test_no_change_is_a_noop(self, encoder, original):
        manifest, _ = encoder.publish(original, n_peers=3)
        result = encoder.update(manifest, original, n_peers=3)
        assert result.changed_chunks == ()
        assert result.upload_bytes == 0
        assert result.upload_savings == 1.0
        assert result.manifest.chunk_ids == manifest.chunk_ids

    def test_wrong_manifest_rejected(self, encoder, original):
        other = VersionedEncoder(PARAMS, b"owner", base_file_id=0xBB)
        manifest, _ = other.publish(original, n_peers=1)
        with pytest.raises(ValueError):
            encoder.update(manifest, original, n_peers=1)


class TestCoefficientRotation:
    def test_new_version_new_coefficients(self, encoder, original):
        """Reusing coefficients across versions would leak the XOR of
        plaintexts; verify each version draws a fresh stream."""
        manifest, _ = encoder.publish(original, n_peers=1)
        edited = bytearray(original)
        edited[0] ^= 1
        result = encoder.update(manifest, bytes(edited), n_peers=1)
        g0 = encoder.coefficient_generator_for(manifest, 0)
        g1 = encoder.coefficient_generator_for(result.manifest, 0)
        assert not np.array_equal(g0.row(0), g1.row(0))

    def test_stale_messages_not_decodable_as_new(self, encoder, original):
        manifest, old_encoded = encoder.publish(original, n_peers=1)
        edited = bytearray(original)
        edited[0] ^= 1
        result = encoder.update(manifest, bytes(edited), n_peers=1)
        decoders = encoder.decoders_for(result.manifest)
        stale_chunk0 = old_encoded[0].bundles[0]
        for msg in stale_chunk0:
            # Old chunk-0 messages carry the old file id: routed nowhere.
            assert all(
                msg.file_id != cid for cid in (result.manifest.chunk_ids[0],)
            )
            from repro.rlnc import Offer

            assert decoders[0].offer(msg) == Offer.REJECTED
