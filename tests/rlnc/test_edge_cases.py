"""Edge-case coverage for the coding layer: degenerate shapes and limits."""

import numpy as np
import pytest

from repro.rlnc import (
    BlockDecoder,
    CodingParams,
    FileEncoder,
    ProgressiveDecoder,
)


class TestKEqualsOne:
    """m*p >= file bits: a single message carries the whole file."""

    def test_roundtrip(self, rng):
        params = CodingParams(p=32, m=64, file_bytes=256)
        assert params.k == 1
        data = rng.bytes(256)
        encoder = FileEncoder(params, b"s", file_id=1)
        encoded = encoder.encode_bundles(data, n_peers=2)
        decoder = BlockDecoder(params, encoder.coefficients)
        assert decoder.decode(encoded.bundles[0], length=256) == data

    def test_single_message_suffices_progressively(self, rng):
        params = CodingParams(p=32, m=64, file_bytes=256)
        data = rng.bytes(256)
        encoder = FileEncoder(params, b"s", file_id=1)
        encoded = encoder.encode_bundles(data, n_peers=1)
        decoder = ProgressiveDecoder(params, encoder.coefficients)
        decoder.offer(encoded.bundles[0][0])
        assert decoder.is_complete
        assert decoder.result(256) == data

    def test_zero_coefficient_rejected_by_screening(self):
        """With k=1, a coefficient row is dependent iff it's [0]; the
        bundle screening must skip such ids (probability 1/q each)."""
        params = CodingParams(p=4, m=2, file_bytes=1)  # k=1, q=16
        encoder = FileEncoder(params, b"s", file_id=1)
        ids = [i for bundle in encoder.independent_ids(200) for i in bundle]
        for mid in ids:
            assert int(encoder.coefficients.row(mid)[0]) != 0


class TestMEqualsOne:
    """One symbol per message: maximal k for the file size."""

    def test_roundtrip(self, rng):
        params = CodingParams(p=16, m=1, file_bytes=16)  # k = 8
        data = rng.bytes(16)
        encoder = FileEncoder(params, b"s", file_id=2)
        encoded = encoder.encode_bundles(data, n_peers=1)
        decoder = BlockDecoder(params, encoder.coefficients)
        assert decoder.decode(encoded.bundles[0], length=16) == data


class TestTinyFiles:
    @pytest.mark.parametrize("size", [0, 1, 2, 3])
    def test_smaller_than_one_symbol(self, size, rng):
        params = CodingParams(p=32, m=4, file_bytes=max(size, 1))
        data = rng.bytes(size)
        encoder = FileEncoder(params, b"s", file_id=3)
        encoded = encoder.encode_bundles(data, n_peers=1)
        decoder = BlockDecoder(params, encoder.coefficients)
        assert decoder.decode(encoded.bundles[0], length=size) == data


class TestAllZeroAndAllOnes:
    @pytest.mark.parametrize("byte", [0x00, 0xFF])
    def test_pathological_content(self, byte):
        params = CodingParams(p=16, m=8, file_bytes=64)
        data = bytes([byte]) * 64
        encoder = FileEncoder(params, b"s", file_id=4)
        encoded = encoder.encode_bundles(data, n_peers=1)
        decoder = BlockDecoder(params, encoder.coefficients)
        assert decoder.decode(encoded.bundles[0], length=64) == data

    def test_zero_file_payloads_are_zero_but_protected(self):
        """An all-zero file encodes to all-zero payloads (linearity), so
        confidentiality of *content patterns* needs the digests/ids, not
        the payload; verify the system still authenticates them."""
        from repro.security import DigestStore

        params = CodingParams(p=16, m=8, file_bytes=64)
        store = DigestStore()
        encoder = FileEncoder(params, b"s", file_id=5)
        encoded = encoder.encode_bundles(bytes(64), n_peers=1, digest_store=store)
        for msg in encoded.bundles[0]:
            assert np.all(np.asarray(msg.payload) == 0)
            assert store.verify(msg.file_id, msg.message_id, msg.payload_bytes())


class TestLargeMessageIds:
    def test_id_near_reserved_boundary(self, rng):
        # Ids with the top bit set belong to the repair range (see
        # repro.repair); the largest *ordinary* id is 2^63 - 1.
        params = CodingParams(p=16, m=8, file_bytes=64)
        data = rng.bytes(64)
        encoder = FileEncoder(params, b"s", file_id=6)
        source = encoder.source_matrix(data)
        big_id = (1 << 63) - 7
        msg = encoder.encode_message(source, big_id)
        assert msg.message_id == big_id
        # Decodable when combined with enough independent rows.
        decoder = ProgressiveDecoder(params, encoder.coefficients)
        decoder.offer(msg)
        mid = 0
        while not decoder.is_complete:
            decoder.offer(encoder.encode_message(source, mid))
            mid += 1
        assert decoder.result(64) == data

    def test_reserved_repair_ids_refused(self):
        from repro.rlnc import UnknownCoefficientError
        from repro.rlnc.coefficients import REPAIR_ID_BASE

        params = CodingParams(p=16, m=8, file_bytes=64)
        encoder = FileEncoder(params, b"s", file_id=6)
        with pytest.raises(UnknownCoefficientError):
            encoder.coefficients.row(REPAIR_ID_BASE)
        with pytest.raises(UnknownCoefficientError):
            encoder.coefficients.matrix([0, REPAIR_ID_BASE + 5])
