"""Unit tests for block and progressive decoding."""

import numpy as np
import pytest

from repro.rlnc import (
    BlockDecoder,
    CodingParams,
    DecodeError,
    FileEncoder,
    Offer,
    ProgressiveDecoder,
)
from repro.security import DigestStore

PARAMS = CodingParams(p=16, m=64, file_bytes=1024)  # k = 8


@pytest.fixture
def setup(rng):
    data = rng.bytes(1000)
    store = DigestStore()
    encoder = FileEncoder(PARAMS, secret=b"owner", file_id=0xF00D)
    encoded = encoder.encode_bundles(data, n_peers=3, digest_store=store)
    return data, encoder, encoded, store


class TestBlockDecoder:
    def test_decode_one_bundle(self, setup):
        data, encoder, encoded, _ = setup
        dec = BlockDecoder(PARAMS, encoder.coefficients)
        assert dec.decode(encoded.bundles[0], length=len(data)) == data

    def test_decode_mixed_bundles(self, setup):
        data, encoder, encoded, _ = setup
        mix = list(encoded.bundles[0][:3]) + list(encoded.bundles[1][3:])
        dec = BlockDecoder(PARAMS, encoder.coefficients)
        assert dec.decode(mix, length=len(data)) == data

    def test_duplicates_dont_count(self, setup):
        data, encoder, encoded, _ = setup
        msgs = [encoded.bundles[0][0]] * 10
        dec = BlockDecoder(PARAMS, encoder.coefficients)
        with pytest.raises(DecodeError):
            dec.decode(msgs)

    def test_too_few_messages(self, setup):
        _, encoder, encoded, _ = setup
        dec = BlockDecoder(PARAMS, encoder.coefficients)
        with pytest.raises(DecodeError):
            dec.decode(encoded.bundles[0][: PARAMS.k - 1])

    def test_wrong_file_rejected(self, setup):
        data, encoder, encoded, _ = setup
        other = FileEncoder(PARAMS, b"owner", file_id=0xBEEF)
        dec = BlockDecoder(PARAMS, other.coefficients)
        with pytest.raises(DecodeError):
            dec.decode(encoded.bundles[0])

    def test_wrong_secret_garbage(self, setup):
        """An attacker guessing the wrong key gets bytes, not the file —
        decoding succeeds mechanically but the output is wrong."""
        data, encoder, encoded, _ = setup
        attacker = FileEncoder(PARAMS, b"wrong-secret", file_id=0xF00D)
        dec = BlockDecoder(PARAMS, attacker.coefficients)
        out = dec.decode(encoded.bundles[0], length=len(data))
        assert out != data

    def test_default_length_padded(self, setup):
        data, encoder, encoded, _ = setup
        dec = BlockDecoder(PARAMS, encoder.coefficients)
        out = dec.decode(encoded.bundles[0])
        assert len(out) == PARAMS.file_bytes
        assert out[: len(data)] == data


class TestProgressiveDecoder:
    def test_any_order_any_mix(self, setup, rng):
        data, encoder, encoded, store = setup
        msgs = encoded.all_messages()
        rng.shuffle(msgs)
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
        for msg in msgs:
            if dec.offer(msg) == Offer.COMPLETE:
                break
        assert dec.is_complete
        assert dec.result(len(data)) == data
        assert dec.accepted == PARAMS.k

    def test_needed_counts_down(self, setup):
        data, encoder, encoded, _ = setup
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients)
        assert dec.needed == PARAMS.k
        for i, msg in enumerate(encoded.bundles[0]):
            dec.offer(msg)
            assert dec.needed == PARAMS.k - i - 1

    def test_duplicate_is_dependent(self, setup):
        _, encoder, encoded, _ = setup
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients)
        msg = encoded.bundles[0][0]
        assert dec.offer(msg) == Offer.ACCEPTED
        assert dec.offer(msg) == Offer.DEPENDENT
        assert dec.dependent == 1

    def test_forged_message_rejected(self, setup):
        data, encoder, encoded, store = setup
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
        msg = encoded.bundles[0][0]
        forged = msg.with_payload(np.asarray(msg.payload) ^ 1)
        assert dec.offer(forged) == Offer.REJECTED
        assert dec.rejected == 1
        # The genuine message still works afterwards.
        assert dec.offer(msg) == Offer.ACCEPTED

    def test_forgery_without_digests_caught_by_consistency(self, rng):
        """Even with no digest store, a dependent-coefficient message
        whose payload contradicts the honest span is rejected.

        Uses GF(2^4) where genuinely dependent fresh ids are easy to
        find, feeds honest rows first, then a tampered message on a
        dependent id: its coefficient part reduces to zero but the
        payload does not -> inconsistent -> REJECTED.
        """
        from repro.gf import IncrementalRank

        params = CodingParams(p=4, m=16, file_bytes=32)  # k = 4
        data = rng.bytes(32)
        encoder = FileEncoder(params, b"owner", file_id=0x77)
        source = encoder.source_matrix(data)
        ids = encoder.independent_ids(1)[0]
        dec = ProgressiveDecoder(params, encoder.coefficients)
        for mid in ids[:-1]:
            assert dec.offer(encoder.encode_message(source, mid)) == Offer.ACCEPTED

        # Find a *fresh* id whose coefficient row lies in the span of
        # the absorbed k-1 rows.
        tracker = IncrementalRank(encoder.field, params.k)
        for mid in ids[:-1]:
            tracker.offer(encoder.coefficients.row(mid))
        dependent_id = None
        for candidate in range(1000, 2000):
            probe = IncrementalRank(encoder.field, params.k)
            for mid in ids[:-1]:
                probe.offer(encoder.coefficients.row(mid))
            if not probe.offer(encoder.coefficients.row(candidate)):
                dependent_id = candidate
                break
        assert dependent_id is not None, "GF(2^4) should yield one quickly"

        honest = encoder.encode_message(source, dependent_id)
        # An honest dependent message is just DEPENDENT...
        probe_dec = ProgressiveDecoder(params, encoder.coefficients)
        for mid in ids[:-1]:
            probe_dec.offer(encoder.encode_message(source, mid))
        assert probe_dec.offer(honest) == Offer.DEPENDENT
        # ...but a tampered one is REJECTED as inconsistent.
        forged = honest.with_payload(np.asarray(honest.payload) ^ 0x5)
        assert dec.offer(forged) == Offer.REJECTED

    def test_wrong_file_rejected(self, setup):
        _, encoder, encoded, _ = setup
        other = FileEncoder(PARAMS, b"owner", file_id=0x1234)
        data2 = b"z" * 100
        msg2 = other.encode_bundles(data2, 1).bundles[0][0]
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients)
        assert dec.offer(msg2) == Offer.REJECTED

    def test_wrong_shape_rejected(self, setup):
        _, encoder, _, _ = setup
        bad_params = CodingParams(p=16, m=32, file_bytes=512)
        other = FileEncoder(bad_params, b"owner", file_id=0xF00D)
        msg = other.encode_bundles(b"q" * 10, 1).bundles[0][0]
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients)
        assert dec.offer(msg) == Offer.REJECTED

    def test_result_before_complete_raises(self, setup):
        _, encoder, encoded, _ = setup
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients)
        dec.offer(encoded.bundles[0][0])
        with pytest.raises(DecodeError):
            dec.result()

    def test_offers_after_complete_ignored(self, setup):
        data, encoder, encoded, _ = setup
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients)
        for msg in encoded.bundles[0]:
            dec.offer(msg)
        assert dec.is_complete
        assert dec.offer(encoded.bundles[1][0]) == Offer.COMPLETE
        assert dec.accepted == PARAMS.k

    def test_matches_block_decoder(self, setup):
        data, encoder, encoded, _ = setup
        block = BlockDecoder(PARAMS, encoder.coefficients)
        prog = ProgressiveDecoder(PARAMS, encoder.coefficients)
        for msg in encoded.bundles[2]:
            prog.offer(msg)
        assert prog.result(len(data)) == block.decode(
            encoded.bundles[2], length=len(data)
        )


def _find_dependent_id(encoder, absorbed_ids, k):
    """A fresh id whose coefficient row lies in the span of ``absorbed_ids``."""
    from repro.gf import IncrementalRank

    for candidate in range(1000, 5000):
        probe = IncrementalRank(encoder.field, k)
        for mid in absorbed_ids:
            probe.offer(encoder.coefficients.row(mid))
        if not probe.offer(encoder.coefficients.row(candidate)):
            return candidate
    raise AssertionError("no dependent id found (small field should yield one)")


class TestSeenIdsRegression:
    """A forged offer must never permanently block its message id.

    Regression for a bug where ``_seen_ids.add`` ran before the
    inconsistent-row rejection: the polluted message recorded the id, so
    the authentic message with the same id later returned ``DEPENDENT``
    without even being eliminated, and re-offers of the forged row were
    misclassified as authentic-but-dependent.
    """

    def test_forged_then_authentic_same_id_accepted(self, setup):
        # Digest-store path: the forged copy is rejected by the digest
        # check, the authentic copy with the SAME id must still be
        # accepted, and the decode must finish with the true bytes.
        data, encoder, encoded, store = setup
        dec = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
        for msg in encoded.bundles[0]:
            forged = msg.with_payload(np.asarray(msg.payload) ^ 1)
            assert dec.offer(forged) == Offer.REJECTED
            assert msg.message_id not in dec._seen_ids
            outcome = dec.offer(msg)
            assert outcome in (Offer.ACCEPTED, Offer.COMPLETE)
        assert dec.is_complete
        assert dec.result(len(data)) == data
        assert dec.rejected == PARAMS.k

    def test_inconsistent_rejection_leaves_id_unseen(self, rng):
        # No digest store: the forged row on a dependent id is caught by
        # the span-consistency check; the id must stay unseen.
        params = CodingParams(p=4, m=16, file_bytes=32)  # k = 4
        data = rng.bytes(32)
        encoder = FileEncoder(params, b"owner", file_id=0x77)
        source = encoder.source_matrix(data)
        ids = encoder.independent_ids(1)[0]
        dec = ProgressiveDecoder(params, encoder.coefficients)
        for mid in ids[:-1]:
            assert dec.offer(encoder.encode_message(source, mid)) == Offer.ACCEPTED

        dep_id = _find_dependent_id(encoder, ids[:-1], params.k)
        honest = encoder.encode_message(source, dep_id)
        forged = honest.with_payload(np.asarray(honest.payload) ^ 0x5)

        assert dec.offer(forged) == Offer.REJECTED
        assert dec.inconsistent == 1
        assert dep_id not in dec._seen_ids

        # Re-offering the forged row is REJECTED again — the buggy
        # version returned DEPENDENT (as if it were authentic).
        assert dec.offer(forged) == Offer.REJECTED
        assert dec.inconsistent == 2

        # The honest message on that id is correctly DEPENDENT (its
        # row really is in the span) and only now records the id.
        assert dec.offer(honest) == Offer.DEPENDENT
        assert dep_id in dec._seen_ids

        # The decode still completes with the true bytes.
        assert dec.offer(encoder.encode_message(source, ids[-1])) == Offer.COMPLETE
        assert dec.result(len(data)) == data
