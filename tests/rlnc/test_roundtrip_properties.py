"""Property-based tests: encode/decode round-trips must be the identity.

Hypothesis drives file contents (including pathological all-zero,
all-0xFF and short inputs), field choices and message mixes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlnc import (
    BlockDecoder,
    ChunkedEncoder,
    CodingParams,
    EncodedMessage,
    FileEncoder,
    ProgressiveDecoder,
    StreamingDecoder,
    bytes_to_symbols,
    symbols_to_bytes,
)


@given(
    data=st.binary(min_size=0, max_size=300),
    p=st.sampled_from([4, 8, 16, 32]),
)
@settings(max_examples=60, deadline=None)
def test_symbol_packing_roundtrip(data, p):
    symbols = bytes_to_symbols(data, p)
    assert symbols_to_bytes(symbols, p, length=len(data)) == data


@given(
    data=st.binary(min_size=0, max_size=256),
    p=st.sampled_from([8, 16, 32]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_encode_decode_roundtrip(data, p, seed):
    params = CodingParams(p=p, m=16, file_bytes=max(len(data), 1))
    encoder = FileEncoder(params, secret=seed.to_bytes(4, "big") + b"!", file_id=seed)
    encoded = encoder.encode_bundles(data, n_peers=2)
    decoder = BlockDecoder(params, encoder.coefficients)
    assert decoder.decode(encoded.bundles[0], length=len(data)) == data
    assert decoder.decode(encoded.bundles[1], length=len(data)) == data


@given(
    data=st.binary(min_size=1, max_size=200),
    order_seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_progressive_any_arrival_order(data, order_seed):
    params = CodingParams(p=16, m=16, file_bytes=len(data))
    encoder = FileEncoder(params, secret=b"prop", file_id=1)
    encoded = encoder.encode_bundles(data, n_peers=3)
    msgs = encoded.all_messages()
    np.random.default_rng(order_seed).shuffle(msgs)
    decoder = ProgressiveDecoder(params, encoder.coefficients)
    for msg in msgs:
        decoder.offer(msg)
        if decoder.is_complete:
            break
    assert decoder.is_complete
    assert decoder.result(len(data)) == data


@given(
    data=st.binary(min_size=0, max_size=400),
    chunk_bytes=st.sampled_from([64, 128, 256]),
)
@settings(max_examples=25, deadline=None)
def test_chunked_streaming_roundtrip(data, chunk_bytes):
    params = CodingParams(p=16, m=8, file_bytes=chunk_bytes)
    enc = ChunkedEncoder(params, b"prop", base_file_id=5)
    manifest, chunks = enc.encode_file(data, n_peers=2)
    dec = StreamingDecoder(manifest, enc)
    out = b""
    for encoded_file in chunks:
        for msg in encoded_file.bundles[1]:
            dec.offer(msg)
        out += b"".join(dec.pop_ready())
    assert out == data
    assert dec.result() == data


@given(
    payload=st.lists(
        st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=32
    ),
    file_id=st.integers(min_value=0, max_value=(1 << 64) - 1),
    message_id=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
@settings(max_examples=60, deadline=None)
def test_wire_format_roundtrip(payload, file_id, message_id):
    msg = EncodedMessage(
        file_id=file_id,
        message_id=message_id,
        payload=np.array(payload, dtype=np.uint32),
        p=16,
    )
    parsed = EncodedMessage.from_bytes(msg.to_bytes(), p=16)
    assert parsed.file_id == file_id
    assert parsed.message_id == message_id
    assert np.array_equal(parsed.payload, msg.payload)


@given(data=st.binary(min_size=1, max_size=128))
@settings(max_examples=25, deadline=None)
def test_tampering_never_decodes_silently(data):
    """Flipping any symbol of any message either gets rejected (with
    digests) or produces a decode that differs from the original file —
    corruption can never silently round-trip."""
    from repro.security import DigestStore

    params = CodingParams(p=16, m=8, file_bytes=len(data))
    store = DigestStore()
    encoder = FileEncoder(params, secret=b"prop", file_id=9)
    encoded = encoder.encode_bundles(data, n_peers=1, digest_store=store)
    msgs = list(encoded.bundles[0])
    tampered = msgs[0].with_payload(np.asarray(msgs[0].payload) ^ 1)

    guarded = ProgressiveDecoder(params, encoder.coefficients, store)
    assert guarded.offer(tampered).name == "REJECTED"

    unguarded = ProgressiveDecoder(params, encoder.coefficients)
    unguarded.offer(tampered)
    for msg in msgs[1:]:
        unguarded.offer(msg)
    if unguarded.is_complete:
        assert unguarded.result(len(data)) != data
