"""Unit tests for byte <-> symbol packing."""

import numpy as np
import pytest

from repro.rlnc import bytes_to_symbols, reshape_file_matrix, symbols_to_bytes


class TestRoundtrip:
    @pytest.mark.parametrize("p", [4, 8, 16, 32])
    def test_aligned_roundtrip(self, p, rng):
        data = rng.bytes(64)
        symbols = bytes_to_symbols(data, p)
        assert symbols_to_bytes(symbols, p, length=64) == data

    @pytest.mark.parametrize("p", [4, 8, 16, 32])
    def test_unaligned_roundtrip(self, p, rng):
        data = rng.bytes(13)
        symbols = bytes_to_symbols(data, p)
        assert symbols_to_bytes(symbols, p, length=13) == data

    def test_empty(self):
        for p in (4, 8, 16, 32):
            assert bytes_to_symbols(b"", p).size == 0
            assert symbols_to_bytes(np.array([], dtype=np.uint32), p) == b""


class TestSemantics:
    def test_nibble_order_big_endian(self):
        # 0xAB -> high nibble first
        out = bytes_to_symbols(b"\xab", 4)
        assert out.tolist() == [0xA, 0xB]

    def test_u16_big_endian(self):
        out = bytes_to_symbols(b"\x01\x02", 16)
        assert out.tolist() == [0x0102]

    def test_u32_big_endian(self):
        out = bytes_to_symbols(b"\x01\x02\x03\x04", 32)
        assert out.tolist() == [0x01020304]

    def test_tail_zero_padded(self):
        out = bytes_to_symbols(b"\xff", 32)
        assert out.tolist() == [0xFF000000]

    def test_symbol_range(self, rng):
        for p in (4, 8, 16):
            out = bytes_to_symbols(rng.bytes(128), p)
            assert out.max() < (1 << p)

    def test_count_extension(self):
        out = bytes_to_symbols(b"\xaa", 8, count=5)
        assert out.tolist() == [0xAA, 0, 0, 0, 0]

    def test_count_too_small_raises(self):
        with pytest.raises(ValueError):
            bytes_to_symbols(b"\xaa\xbb", 8, count=1)

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            bytes_to_symbols(b"12", 12)
        with pytest.raises(ValueError):
            symbols_to_bytes(np.zeros(2, dtype=np.uint32), 12)


class TestReshape:
    def test_shape_and_content(self, rng):
        data = rng.bytes(32)
        X = reshape_file_matrix(data, 8, k=4, m=8)
        assert X.shape == (4, 8)
        assert X.reshape(-1).tolist() == list(data)

    def test_padding(self):
        X = reshape_file_matrix(b"\x01", 8, k=2, m=4)
        assert X[0].tolist() == [1, 0, 0, 0]
        assert X[1].tolist() == [0, 0, 0, 0]

    def test_odd_nibbles(self):
        X = reshape_file_matrix(b"\xab\xcd", 4, k=2, m=3)
        assert X[0].tolist() == [0xA, 0xB, 0xC]
        assert X[1].tolist() == [0xD, 0, 0]
