"""Unit tests for coding-parameter arithmetic (Table I math)."""

import pytest

from repro.rlnc import (
    ONE_MEGABYTE,
    PAPER_EXAMPLE,
    TABLE1_FIELD_BITS,
    TABLE1_MESSAGE_LENGTHS,
    CodingParams,
    table1_grid,
)


class TestCodingParams:
    def test_paper_running_example(self):
        # Section III-C: "k = 8, m = 32,768 and q = 2^32"
        assert PAPER_EXAMPLE.k == 8
        assert PAPER_EXAMPLE.m == 32768
        assert PAPER_EXAMPLE.q == 1 << 32
        assert PAPER_EXAMPLE.file_bytes == ONE_MEGABYTE

    def test_k_formula_exact_grid(self):
        for p in TABLE1_FIELD_BITS:
            for m in TABLE1_MESSAGE_LENGTHS:
                params = CodingParams(p=p, m=m)
                assert params.k == (8 * ONE_MEGABYTE) // (m * p)

    def test_k_rounds_up(self):
        # 100 bytes = 800 bits at p=8, m=33 -> 800/264 = 3.03 -> k=4
        params = CodingParams(p=8, m=33, file_bytes=100)
        assert params.k == 4
        assert params.padded_bytes >= 100

    def test_message_bytes(self):
        assert CodingParams(p=8, m=100, file_bytes=100).message_bytes == 100
        assert CodingParams(p=4, m=100, file_bytes=50).message_bytes == 50
        assert CodingParams(p=32, m=8, file_bytes=32).message_bytes == 32

    def test_expansion_overhead_zero_when_aligned(self):
        assert CodingParams(p=8, m=256, file_bytes=4096).expansion_overhead == 0.0

    def test_expansion_overhead_positive_when_padded(self):
        params = CodingParams(p=32, m=100, file_bytes=150)
        assert params.expansion_overhead > 0.0

    def test_decode_cost_monotone_in_k(self):
        cheap = CodingParams(p=32, m=1 << 18)
        costly = CodingParams(p=32, m=1 << 13)
        assert costly.decode_field_ops() > cheap.decode_field_ops()

    def test_describe_mentions_field_and_k(self):
        text = PAPER_EXAMPLE.describe()
        assert "GF(2^32)" in text and "k=8" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(p=5, m=100),
            dict(p=8, m=0),
            dict(p=8, m=10, file_bytes=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CodingParams(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_EXAMPLE.m = 1


class TestTable1Grid:
    def test_full_paper_table(self):
        grid = table1_grid()
        expected = {
            4: (256, 128, 64, 32, 16, 8),
            8: (128, 64, 32, 16, 8, 4),
            16: (64, 32, 16, 8, 4, 2),
            32: (32, 16, 8, 4, 2, 1),
        }
        for p, row in expected.items():
            for m, k in zip(TABLE1_MESSAGE_LENGTHS, row):
                assert grid[(p, m)] == k

    def test_scales_with_file_size(self):
        half = table1_grid(file_bytes=ONE_MEGABYTE // 2)
        assert half[(32, 1 << 15)] == 4  # half the messages of the 1MB case

    def test_grid_shape(self):
        assert len(table1_grid()) == len(TABLE1_FIELD_BITS) * len(
            TABLE1_MESSAGE_LENGTHS
        )
