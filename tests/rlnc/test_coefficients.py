"""Unit tests for keyed coefficient generation (the secrecy core)."""

import numpy as np
import pytest

from repro.gf import GF
from repro.rlnc import CoefficientGenerator


@pytest.fixture
def gen():
    return CoefficientGenerator(GF(16), k=8, secret=b"secret", file_id=7)


class TestDeterminism:
    def test_same_inputs_same_row(self, gen):
        assert np.array_equal(gen.row(5), gen.row(5))

    def test_reconstructible_by_owner(self):
        # A fresh generator with the same (secret, file_id) regenerates
        # identical rows — this is what lets the owner decode.
        a = CoefficientGenerator(GF(16), 8, b"secret", 7)
        b = CoefficientGenerator(GF(16), 8, b"secret", 7)
        for mid in (0, 1, 99, 12345):
            assert np.array_equal(a.row(mid), b.row(mid))

    def test_rows_cached(self, gen):
        assert gen.row(3) is gen.row(3)

    def test_rows_read_only(self, gen):
        with pytest.raises(ValueError):
            gen.row(1)[0] = 0


class TestSecrecyContract:
    def test_different_secret_different_rows(self):
        a = CoefficientGenerator(GF(16), 8, b"secret-A", 7)
        b = CoefficientGenerator(GF(16), 8, b"secret-B", 7)
        assert not np.array_equal(a.row(0), b.row(0))

    def test_different_file_id_different_rows(self):
        a = CoefficientGenerator(GF(16), 8, b"secret", 7)
        b = CoefficientGenerator(GF(16), 8, b"secret", 8)
        assert not np.array_equal(a.row(0), b.row(0))

    def test_different_message_id_different_rows(self, gen):
        assert not np.array_equal(gen.row(0), gen.row(1))


class TestDistribution:
    def test_elements_in_field(self, gen):
        rows = gen.matrix(range(100))
        assert rows.dtype == GF(16).dtype
        assert int(rows.max()) < GF(16).q

    def test_roughly_uniform(self):
        # Mean of uniform GF(2^8) symbols should be near 127.5.
        gen = CoefficientGenerator(GF(8), k=64, secret=b"s", file_id=0)
        rows = gen.matrix(range(200))
        mean = float(rows.mean())
        assert 115 < mean < 140

    def test_almost_surely_independent(self):
        # For q = 2^32, k random rows are independent w.p. ~1 - k/q.
        from repro.gf import rank

        F = GF(32)
        gen = CoefficientGenerator(F, k=16, secret=b"s", file_id=1)
        M = gen.matrix(range(16))
        assert rank(F, M) == 16


class TestMatrix:
    def test_matrix_stacks_rows(self, gen):
        M = gen.matrix([4, 9, 2])
        assert M.shape == (3, 8)
        assert np.array_equal(M[0], gen.row(4))
        assert np.array_equal(M[2], gen.row(2))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CoefficientGenerator(GF(8), k=0, secret=b"s", file_id=0)


class TestMatrixBatching:
    """matrix() batches cache misses but must reproduce row() exactly."""

    def test_rows_identical_to_row_calls(self, gen):
        fresh = CoefficientGenerator(GF(16), k=8, secret=b"secret", file_id=7)
        ids = [12, 3, 12, 44, 0, 3]
        M = gen.matrix(ids)
        rows = np.stack([fresh.row(i) for i in ids])
        assert M.tobytes() == rows.tobytes()

    def test_batched_rows_are_cached_read_only(self):
        gen = CoefficientGenerator(GF(16), k=4, secret=b"s", file_id=2)
        gen.matrix([5, 6])
        cached = gen.row(5)
        assert not cached.flags.writeable
        # Subsequent matrix() calls reuse the cache, not the stream.
        assert np.array_equal(gen.matrix([5])[0], cached)

    def test_mixed_cached_and_missing(self):
        a = CoefficientGenerator(GF(8), k=6, secret=b"s", file_id=3)
        b = CoefficientGenerator(GF(8), k=6, secret=b"s", file_id=3)
        a.row(1)  # warm one row
        M = a.matrix([0, 1, 2])
        assert M.tobytes() == b.matrix([0, 1, 2]).tobytes()

    def test_empty_ids(self, gen):
        assert gen.matrix([]).shape == (0, 8)
