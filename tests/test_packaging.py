"""Packaging sanity: every public export must resolve.

Catches broken ``__init__`` re-export lists (a common refactoring
casualty) and keeps ``__all__`` honest across the whole package.
"""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.gf",
    "repro.rlnc",
    "repro.security",
    "repro.core",
    "repro.sim",
    "repro.storage",
    "repro.transfer",
    "repro.discovery",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_subpackages_reachable_from_root():
    for sub in repro.__all__:
        importlib.import_module(f"repro.{sub}" if sub != "cli" else "repro.cli")


def test_no_accidental_circular_imports():
    """gf and security must import without pulling in the heavy layers."""
    import subprocess
    import sys

    code = (
        "import sys; import repro.gf, repro.security; "
        "loaded = [m for m in sys.modules if m.startswith('repro.')]; "
        "bad = [m for m in loaded if any(x in m for x in "
        "('sim', 'transfer', 'storage', 'discovery', 'rlnc', 'core'))]; "
        "sys.exit(1 if bad else 0)"
    )
    result = subprocess.run([sys.executable, "-c", code])
    assert result.returncode == 0, "low-level packages import high-level ones"
