"""Property test: churn + survivor repair restores decodability.

For any file content and any choice of up to ``f`` failed peers, the
survivors can locally recombine fresh messages such that a fresh
:class:`ProgressiveDecoder` succeeds — while the owner's uplink ships
digests only, never payload bytes (the paper's asymmetric-channel
constraint applied to repair).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.repair import (
    RepairableCoefficients,
    RepairRecord,
    recombine,
    register_repair_digests,
)
from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
N_PEERS = 6
PER_PEER = 2  # scarce redundancy: 12 messages for k = 8
MAX_KILL = 2  # f: kill any <= 2 peers; 8 survivor messages remain


@given(
    data=st.binary(min_size=1, max_size=PARAMS.file_bytes),
    secret=st.binary(min_size=1, max_size=8),
    killed=st.sets(
        st.integers(min_value=0, max_value=N_PEERS - 1),
        min_size=1,
        max_size=MAX_KILL,
    ),
)
@settings(max_examples=25, deadline=None)
def test_repair_restores_decode_with_zero_owner_payload(data, secret, killed):
    encoder = FileEncoder(PARAMS, secret, file_id=0xF00D)
    source = encoder.source_matrix(data)
    messages = encoder.encode_ids(source, list(range(N_PEERS * PER_PEER)))
    bundles = {
        peer: messages[peer * PER_PEER : (peer + 1) * PER_PEER]
        for peer in range(N_PEERS)
    }

    survivors = [
        m for peer in range(N_PEERS) if peer not in killed for m in bundles[peer]
    ]
    # Survivor-side repair: mint a decode-worth of fresh messages from
    # whatever the survivors still hold.  No plaintext, no secret.
    record = RepairRecord(
        file_id=0xF00D,
        epoch=0,
        helper_ids=tuple(m.message_id for m in survivors),
        count=min(PARAMS.k, len(survivors)),
    )
    fresh = recombine(record, survivors)

    # Owner side: digest registration is the entire uplink contribution.
    digests = DigestStore()
    owner_payload_bytes = 0
    owner_digest_bytes = register_repair_digests(
        record, encoder.coefficients, source, digests
    )
    assert owner_payload_bytes == 0
    assert owner_digest_bytes == 16 * record.count
    for message in fresh:
        assert digests.verify(0xF00D, message.message_id, message.payload_bytes())

    # A fresh decoder fed survivors + repaired messages succeeds.
    for message in survivors:
        digests.record(0xF00D, message.message_id, message.payload_bytes())
    decoder = ProgressiveDecoder(
        PARAMS,
        RepairableCoefficients(encoder.coefficients, [record]),
        digest_store=digests,
    )
    for message in survivors + fresh:
        if decoder.is_complete:
            break
        decoder.offer(message)
    assert decoder.is_complete
    assert decoder.result(len(data)) == data

    # Determinism: replaying the record yields bit-identical payloads.
    replay = recombine(record, survivors)
    for a, b in zip(fresh, replay):
        assert np.array_equal(a.payload, b.payload)
