"""Unit tests for the repair control loop (repro.repair.monitor)."""

import pytest

from repro.gf import GF
from repro.repair import (
    DownloadRepairTrigger,
    RedundancyMonitor,
    RepairCoordinator,
)
from repro.rlnc import CodingParams, FileEncoder

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0xF00D


@pytest.fixture
def helpers(rng):
    encoder = FileEncoder(PARAMS, b"owner-secret", file_id=FILE_ID)
    source = encoder.source_matrix(rng.bytes(PARAMS.file_bytes))
    return encoder.encode_ids(source, list(range(12)))


class TestRedundancyMonitor:
    def test_target_rounds_up(self):
        assert RedundancyMonitor(8, threshold=1.0).target == 8
        assert RedundancyMonitor(8, threshold=1.5).target == 12
        assert RedundancyMonitor(8, threshold=1.1).target == 9

    def test_deficit_tracks_census(self):
        monitor = RedundancyMonitor(8)
        assert monitor.live(FILE_ID) == 0
        assert monitor.deficit(FILE_ID) == 8
        monitor.observe(FILE_ID, 5)
        assert monitor.live(FILE_ID) == 5
        assert monitor.deficit(FILE_ID) == 3
        assert monitor.needs_repair(FILE_ID)
        monitor.observe(FILE_ID, 11)
        assert monitor.deficit(FILE_ID) == 0
        assert not monitor.needs_repair(FILE_ID)

    def test_epochs_are_monotone_per_file(self):
        monitor = RedundancyMonitor(8)
        assert [monitor.next_epoch(1) for _ in range(3)] == [0, 1, 2]
        assert monitor.next_epoch(2) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RedundancyMonitor(0)
        with pytest.raises(ValueError):
            RedundancyMonitor(8, threshold=0.0)
        with pytest.raises(ValueError):
            RedundancyMonitor(8).observe(FILE_ID, -1)


class TestRepairCoordinator:
    def _coordinator(self, **kwargs):
        return RepairCoordinator(GF(16), **kwargs)

    def test_successful_epoch(self, helpers):
        outcome = self._coordinator().repair(
            FILE_ID,
            [(0, lambda: helpers[:4]), (1, lambda: helpers[4:8])],
            count=3,
            epoch=0,
        )
        assert outcome.ok
        assert outcome.report.produced == 3
        assert len(outcome.messages) == 3
        assert not outcome.report.degraded
        assert outcome.record.helper_ids == tuple(range(8))

    def test_duplicate_helper_messages_are_deduped(self, helpers):
        outcome = self._coordinator().repair(
            FILE_ID,
            [(0, lambda: helpers[:4]), (1, lambda: helpers[:4])],
            count=2,
            epoch=0,
        )
        assert outcome.ok
        assert outcome.report.helper_messages == 4

    def test_failed_helper_is_excluded_with_warning(self, helpers):
        def dies():
            raise OSError("connection reset")

        outcome = self._coordinator().repair(
            FILE_ID,
            [(0, dies), (1, lambda: helpers[:6])],
            count=4,
            epoch=0,
        )
        assert outcome.ok
        assert outcome.report.helpers_failed == 1
        assert any("helper 0 failed" in w for w in outcome.report.warnings)

    def test_partial_repair_degrades_gracefully(self, helpers):
        outcome = self._coordinator().repair(
            FILE_ID, [(0, lambda: helpers[:3])], count=5, epoch=0
        )
        assert outcome.ok
        assert outcome.report.produced == 3
        assert outcome.report.degraded
        assert any("partial repair" in w for w in outcome.report.warnings)

    def test_total_failure_backs_off_and_reports(self):
        def dies():
            raise OSError("gone")

        outcome = self._coordinator(max_attempts=3, backoff_slots=2).repair(
            FILE_ID, [(0, dies)], count=4, epoch=0
        )
        assert not outcome.ok
        assert outcome.record is None
        assert outcome.messages == ()
        assert outcome.report.degraded
        assert outcome.report.attempts == 3
        assert outcome.report.waited_slots == 4  # backoff before retries 2 and 3

    def test_foreign_file_messages_ignored(self, helpers, rng):
        other = FileEncoder(PARAMS, b"owner-secret", file_id=0xBEEF)
        rogue = other.encode_ids(
            other.source_matrix(rng.bytes(64)), list(range(4))
        )
        outcome = self._coordinator().repair(
            FILE_ID, [(0, lambda: rogue + helpers[:4])], count=2, epoch=0
        )
        assert outcome.ok
        assert outcome.report.helper_messages == 4

    def test_epoch_from_monitor(self, helpers):
        monitor = RedundancyMonitor(PARAMS.k)
        coordinator = RepairCoordinator(GF(16), monitor=monitor)
        first = coordinator.repair(FILE_ID, [(0, lambda: helpers[:4])], count=2)
        second = coordinator.repair(FILE_ID, [(0, lambda: helpers[:4])], count=2)
        assert first.record.epoch == 0
        assert second.record.epoch == 1

    def test_epoch_required_without_monitor(self, helpers):
        with pytest.raises(ValueError):
            self._coordinator().repair(FILE_ID, [(0, lambda: helpers)], count=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._coordinator(max_attempts=0)
        with pytest.raises(ValueError):
            self._coordinator(backoff_slots=-1)


class TestDownloadRepairTrigger:
    def test_fires_below_threshold(self):
        calls = []
        trigger = DownloadRepairTrigger(hook=lambda n: calls.append(n) or 3)
        assert not trigger.should_fire(needed=4, supply=4, slot=0)
        assert trigger.should_fire(needed=4, supply=3, slot=0)
        assert trigger.fire(4, slot=0) == 3
        assert calls == [4]
        assert trigger.injected == 3

    def test_threshold_scales_need(self):
        trigger = DownloadRepairTrigger(hook=lambda n: 0, threshold=2.0)
        assert trigger.should_fire(needed=4, supply=7, slot=0)
        assert not trigger.should_fire(needed=4, supply=8, slot=0)

    def test_max_fires(self):
        trigger = DownloadRepairTrigger(hook=lambda n: 0, max_fires=1)
        trigger.fire(4, slot=0)
        assert not trigger.should_fire(needed=4, supply=0, slot=99)

    def test_cooldown(self):
        trigger = DownloadRepairTrigger(
            hook=lambda n: 0, max_fires=5, cooldown_slots=10
        )
        trigger.fire(4, slot=0)
        assert not trigger.should_fire(needed=4, supply=0, slot=5)
        assert trigger.should_fire(needed=4, supply=0, slot=11)

    def test_complete_download_never_fires(self):
        trigger = DownloadRepairTrigger(hook=lambda n: 0)
        assert not trigger.should_fire(needed=0, supply=0, slot=0)
