"""Acceptance scenario for survivor repair under churn.

After seeded churn kills peers holding at least 30% of a file's coded
messages, survivor-only recombination must restore decode success to at
least the pre-churn baseline while the owner ships zero payload bytes
(digests only), repaired messages must pass digest verification, and
downloads must be bit-identical when repair is disabled.

``REPRO_FAULT_SEED`` overrides the churn seed (the CI fault matrix runs
three of them).
"""

import os

import numpy as np
import pytest

from repro.sim import FileSharingNetwork, repair_under_churn
from repro.sim.network import DEFAULT_SIM_PARAMS

SEED = int(os.environ.get("REPRO_FAULT_SEED", "7"))


class TestChurnScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return repair_under_churn(seed=SEED)

    def test_churn_is_substantial(self, result):
        assert result["dropped_message_fraction"] >= 0.30
        assert result["prob_churn"] < result["prob_pre"]

    def test_repair_restores_decode_success(self, result):
        assert result["prob_repaired"] >= result["prob_pre"]
        assert result["produced"] > 0
        assert result["degraded_chunks"] == 0

    def test_owner_ships_digests_only(self, result):
        assert result["owner_payload_bytes"] == 0
        # 16 digest bytes per fresh message, nothing else.
        assert result["owner_digest_bytes"] == 16 * result["produced"]
        assert result["helper_bandwidth_bytes"] > 0

    def test_no_repair_baseline_stays_degraded(self):
        baseline = repair_under_churn(seed=SEED, repair=False)
        assert baseline["produced"] == 0
        assert baseline["prob_repaired"] == baseline["prob_churn"]
        assert baseline["prob_repaired"] < baseline["prob_pre"]

    def test_scenario_is_deterministic(self, result):
        replay = repair_under_churn(seed=SEED)
        assert replay == result


class TestNetworkRepair:
    def _network(self, n=6, message_limit=2):
        net = FileSharingNetwork([512.0] * n, seed=SEED)
        rng = np.random.default_rng(SEED * 31 + 5)
        data = rng.integers(
            0, 256, size=DEFAULT_SIM_PARAMS.file_bytes, dtype=np.uint8
        ).tobytes()
        net.publish(0, "f", data, message_limit=message_limit)
        return net, data

    def test_repaired_messages_pass_digest_verification(self):
        net, _ = self._network()
        for peer in (3, 4, 5):
            net.drop_peer_data(peer, "f")
        result = net.churn_repair("f", target=1, count=4)
        assert result["produced"] > 0
        assert result["owner_payload_bytes"] == 0
        handle = net.registry["f"]
        owner_digests = net.digest_stores[handle.owner]
        for chunk_id in handle.manifest.chunk_ids:
            for message in net.stores[1].messages(chunk_id):
                assert owner_digests.verify(
                    chunk_id, message.message_id, message.payload_bytes()
                )

    def test_mid_download_repair_completes_the_transfer(self):
        # Serving only peers 0 and 1 (4 of the needed 8 messages), the
        # download stalls without repair and completes with it: the
        # trigger recombines the *other* peers' stored rank into a live
        # serving peer's store mid-flight.
        net, data = self._network()
        stalled = net.download(1, "f", max_slots=30, peers=[0, 1])
        assert not stalled.complete

        net2, data2 = self._network()
        repaired = net2.download(
            1, "f", max_slots=30, peers=[0, 1], repair_threshold=1.0
        )
        assert repaired.complete
        assert repaired.data == data2

    def test_downloads_bit_identical_when_repair_disabled(self):
        # A healthy network never fires the trigger, so an armed download
        # must equal the unarmed one byte for byte; and the default
        # (None) must be exactly the legacy no-repair path.
        net_a, _ = self._network()
        plain = net_a.download(1, "f", max_slots=200)
        net_b, _ = self._network()
        armed = net_b.download(1, "f", max_slots=200, repair_threshold=1.0)
        assert plain.complete and armed.complete
        assert plain.data == armed.data
        assert plain.slots == armed.slots
        assert plain.reports == armed.reports
