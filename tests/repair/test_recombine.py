"""Unit tests for the survivor-repair codec (repro.repair.recombine)."""

import numpy as np
import pytest

from repro.gf import GF, IncrementalRank
from repro.repair import (
    REPAIR_ID_BASE,
    RepairableCoefficients,
    RepairError,
    RepairRecord,
    effective_rows,
    is_repair_id,
    recombination_matrix,
    recombine,
    records_from_dict,
    records_to_dict,
    register_repair_digests,
    repair_message_id,
    split_repair_id,
)
from repro.rlnc import (
    CodingParams,
    FileEncoder,
    ProgressiveDecoder,
    UnknownCoefficientError,
)
from repro.security import DigestStore

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0xF00D


@pytest.fixture
def encoder():
    return FileEncoder(PARAMS, b"owner-secret", file_id=FILE_ID)


@pytest.fixture
def source(encoder, rng):
    return encoder.source_matrix(rng.bytes(PARAMS.file_bytes))


@pytest.fixture
def helpers(encoder, source):
    """Twelve ordinary coded messages (ids 0..11) playing the survivors."""
    return encoder.encode_ids(source, list(range(12)))


class TestIdSpace:
    def test_round_trip(self):
        for epoch, index in [(0, 0), (3, 7), (2**31 - 1, 2**32 - 1)]:
            mid = repair_message_id(epoch, index)
            assert is_repair_id(mid)
            assert split_repair_id(mid) == (epoch, index)

    def test_reserved_range_is_the_top_bit(self):
        assert REPAIR_ID_BASE == 1 << 63
        assert not is_repair_id(REPAIR_ID_BASE - 1)
        assert is_repair_id(REPAIR_ID_BASE)

    def test_out_of_range_raises(self):
        with pytest.raises(RepairError):
            repair_message_id(2**31, 0)
        with pytest.raises(RepairError):
            repair_message_id(0, 2**32)
        with pytest.raises(RepairError):
            repair_message_id(-1, 0)

    def test_split_of_ordinary_id_raises(self):
        with pytest.raises(RepairError):
            split_repair_id(42)

    def test_base_generator_refuses_reserved_ids(self, encoder):
        with pytest.raises(UnknownCoefficientError):
            encoder.coefficients.row(repair_message_id(0, 0))


class TestRepairRecord:
    def test_validation(self):
        with pytest.raises(RepairError):
            RepairRecord(FILE_ID, 0, (), 1)  # no helpers
        with pytest.raises(RepairError):
            RepairRecord(FILE_ID, 0, (1, 1, 2), 2)  # duplicate helper
        with pytest.raises(RepairError):
            RepairRecord(FILE_ID, 0, (1, 2), 3)  # count > helpers
        with pytest.raises(RepairError):
            RepairRecord(FILE_ID, 0, (1, 2), 0)  # count < 1

    def test_message_ids(self):
        record = RepairRecord(FILE_ID, epoch=5, helper_ids=(1, 2, 3), count=2)
        assert record.message_ids == (
            repair_message_id(5, 0),
            repair_message_id(5, 1),
        )

    def test_dict_round_trip(self):
        record = RepairRecord(FILE_ID, 1, (4, 9, 2), 3)
        assert RepairRecord.from_dict(record.to_dict()) == record
        grouped = records_from_dict(records_to_dict([record]))
        assert grouped == {FILE_ID: [record]}


class TestRecombinationMatrix:
    def test_deterministic_and_full_rank(self):
        record = RepairRecord(FILE_ID, 0, tuple(range(6)), 4)
        field = GF(16)
        a = recombination_matrix(record, field)
        b = recombination_matrix(record, field)
        assert a.shape == (4, 6)
        assert np.array_equal(a, b)
        tracker = IncrementalRank(field, 6)
        for row in a:
            assert tracker.offer(row)
        assert not a.flags.writeable

    def test_helper_set_changes_matrix(self):
        field = GF(16)
        a = recombination_matrix(RepairRecord(FILE_ID, 0, (0, 1, 2), 2), field)
        b = recombination_matrix(RepairRecord(FILE_ID, 0, (0, 1, 3), 2), field)
        assert not np.array_equal(a, b)

    def test_epoch_changes_matrix(self):
        field = GF(16)
        a = recombination_matrix(RepairRecord(FILE_ID, 0, (0, 1, 2), 2), field)
        b = recombination_matrix(RepairRecord(FILE_ID, 1, (0, 1, 2), 2), field)
        assert not np.array_equal(a, b)


class TestRecombine:
    def test_fresh_messages_carry_reserved_ids(self, helpers):
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers[:6]), 4
        )
        fresh = recombine(record, helpers[:6])
        assert [m.message_id for m in fresh] == list(record.message_ids)
        assert all(m.file_id == FILE_ID and m.p == PARAMS.p for m in fresh)

    def test_deterministic(self, helpers):
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers[:6]), 4
        )
        a = recombine(record, helpers[:6])
        b = recombine(record, helpers[:6])
        for x, y in zip(a, b):
            assert np.array_equal(x.payload, y.payload)

    def test_order_matters(self, helpers):
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers[:4]), 2
        )
        with pytest.raises(RepairError):
            recombine(record, list(reversed(helpers[:4])))

    def test_count_mismatch_raises(self, helpers):
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers[:4]), 2
        )
        with pytest.raises(RepairError):
            recombine(record, helpers[:3])

    def test_foreign_file_raises(self, helpers):
        other = FileEncoder(PARAMS, b"owner-secret", file_id=0xBEEF)
        rogue = other.encode_ids(
            other.source_matrix(b"x" * PARAMS.file_bytes), [99]
        )[0]
        record = RepairRecord(FILE_ID, 0, (helpers[0].message_id, 99), 1)
        with pytest.raises(RepairError):
            recombine(record, [helpers[0], rogue])

    def test_effective_rows_match_payloads(self, encoder, source, helpers):
        """The algebraic identity: R @ (B X) == (R @ B) X."""
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers[:8]), 5
        )
        fresh = recombine(record, helpers[:8])
        rows = effective_rows(record, encoder.coefficients)
        expected = encoder.field.matmul(rows, source)
        for i, message in enumerate(fresh):
            assert np.array_equal(message.payload, expected[i])


class TestRegisterRepairDigests:
    def test_digests_verify_and_cost_is_bytes_only(
        self, encoder, source, helpers
    ):
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers[:6]), 4
        )
        fresh = recombine(record, helpers[:6])
        digests = DigestStore()
        shipped = register_repair_digests(
            record, encoder.coefficients, source, digests
        )
        assert shipped == 16 * record.count  # MD5 only — never payloads
        for message in fresh:
            assert digests.verify(
                FILE_ID, message.message_id, message.payload_bytes()
            )

    def test_tampered_payload_fails_verification(self, encoder, source, helpers):
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers[:6]), 2
        )
        fresh = recombine(record, helpers[:6])
        digests = DigestStore()
        register_repair_digests(record, encoder.coefficients, source, digests)
        tampered = bytearray(fresh[0].payload_bytes())
        tampered[0] ^= 0xFF
        assert not digests.verify(FILE_ID, fresh[0].message_id, bytes(tampered))


class TestRepairableCoefficients:
    def _record(self, helpers, epoch=0, count=4, start=0):
        return RepairRecord(
            FILE_ID,
            epoch,
            tuple(m.message_id for m in helpers[start : start + 6]),
            count,
        )

    def test_ordinary_ids_pass_through(self, encoder, helpers):
        wrapped = RepairableCoefficients(encoder.coefficients)
        assert np.array_equal(wrapped.row(3), encoder.coefficients.row(3))

    def test_registered_epoch_resolves(self, encoder, helpers):
        record = self._record(helpers)
        wrapped = RepairableCoefficients(encoder.coefficients, [record])
        rows = effective_rows(record, encoder.coefficients)
        for i, mid in enumerate(record.message_ids):
            assert np.array_equal(wrapped.row(mid), rows[i])

    def test_unregistered_epoch_raises(self, encoder, helpers):
        wrapped = RepairableCoefficients(encoder.coefficients)
        with pytest.raises(UnknownCoefficientError):
            wrapped.row(repair_message_id(0, 0))

    def test_index_beyond_count_raises(self, encoder, helpers):
        record = self._record(helpers, count=2)
        wrapped = RepairableCoefficients(encoder.coefficients, [record])
        with pytest.raises(UnknownCoefficientError):
            wrapped.row(repair_message_id(0, 2))

    def test_live_source_sees_later_registrations(self, encoder, helpers):
        registry: list[RepairRecord] = []
        wrapped = RepairableCoefficients(
            encoder.coefficients, lambda: registry
        )
        mid = repair_message_id(0, 0)
        with pytest.raises(UnknownCoefficientError):
            wrapped.row(mid)
        registry.append(self._record(helpers))  # repair runs *after* build
        assert wrapped.row(mid) is not None

    def test_conflicting_epoch_registration_raises(self, encoder, helpers):
        record = self._record(helpers)
        other = self._record(helpers, start=1)
        wrapped = RepairableCoefficients(encoder.coefficients, [record])
        with pytest.raises(RepairError):
            wrapped.register(other)

    def test_foreign_file_record_raises(self, encoder, helpers):
        record = RepairRecord(0xBEEF, 0, (1, 2, 3), 2)
        with pytest.raises(RepairError):
            RepairableCoefficients(encoder.coefficients, [record])

    def test_repair_of_repairs_resolves(self, encoder, source, helpers):
        """Second-epoch helpers may be first-epoch repaired messages."""
        first = self._record(helpers)
        fresh = recombine(first, helpers[:6])
        second = RepairRecord(
            FILE_ID,
            1,
            tuple(m.message_id for m in fresh[:3]) + (helpers[6].message_id,),
            2,
        )
        nested = recombine(second, fresh[:3] + [helpers[6]])
        wrapped = RepairableCoefficients(encoder.coefficients, [first, second])
        expected = encoder.field.matmul(wrapped.matrix(second.message_ids), source)
        for i, message in enumerate(nested):
            assert np.array_equal(message.payload, expected[i])

    def test_self_citing_record_raises(self, encoder):
        rogue = RepairRecord(FILE_ID, 0, (repair_message_id(0, 0), 5), 1)
        wrapped = RepairableCoefficients(encoder.coefficients, [rogue])
        with pytest.raises(RepairError):
            wrapped.row(repair_message_id(0, 0))


class TestDecodeWithRepairs:
    def test_survivors_plus_repaired_decode(self, encoder, rng):
        """k-1 survivors + one repaired message finish the decode."""
        data = rng.bytes(PARAMS.file_bytes)
        source = encoder.source_matrix(data)
        messages = encoder.encode_ids(source, list(range(PARAMS.k + 2)))
        survivors = messages[: PARAMS.k - 1]
        helpers = messages[PARAMS.k - 1 :]  # rank the survivors lack
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in helpers), 2
        )
        fresh = recombine(record, helpers)
        digests = DigestStore()
        for message in survivors:
            digests.record(FILE_ID, message.message_id, message.payload_bytes())
        register_repair_digests(record, encoder.coefficients, source, digests)
        decoder = ProgressiveDecoder(
            PARAMS,
            RepairableCoefficients(encoder.coefficients, [record]),
            digest_store=digests,
        )
        for message in survivors:
            decoder.offer(message)
        assert not decoder.is_complete
        decoder.offer(fresh[0])
        assert decoder.is_complete
        assert decoder.result() == data

    def test_unregistered_repair_message_is_rejected(self, encoder, rng):
        data = rng.bytes(PARAMS.file_bytes)
        source = encoder.source_matrix(data)
        messages = encoder.encode_ids(source, list(range(6)))
        record = RepairRecord(
            FILE_ID, 0, tuple(m.message_id for m in messages), 2
        )
        fresh = recombine(record, messages)
        decoder = ProgressiveDecoder(PARAMS, encoder.coefficients)
        outcome = decoder.offer(fresh[0])
        assert outcome.name == "REJECTED"
