"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path, rng):
    src = tmp_path / "video.bin"
    src.write_bytes(rng.bytes(3000))
    out = tmp_path / "encoded"
    return tmp_path, src, out


def encode(src, out, peers=3, chunk=1024, secret="s3cret"):
    return main(
        [
            "encode",
            str(src),
            "--out",
            str(out),
            "--secret",
            secret,
            "--peers",
            str(peers),
            "--p",
            "16",
            "--m",
            "64",
            "--chunk-bytes",
            str(chunk),
        ]
    )


class TestEncode:
    def test_creates_bundles_manifest_digests(self, workspace, capsys):
        tmp, src, out = workspace
        assert encode(src, out) == 0
        assert (out / "manifest.json").exists()
        assert (out / "digests.json").exists()
        for peer in range(3):
            dats = list((out / f"peer{peer}").glob("*.dat"))
            assert len(dats) == 3  # one per chunk
        stdout = capsys.readouterr().out
        assert "3 chunk(s)" in stdout

    def test_manifest_contents(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["total_length"] == 3000
        assert manifest["p"] == 16
        assert manifest["version"] == 0
        assert len(manifest["chunk_versions"]) == 3
        assert len(manifest["chunk_hashes"]) == 3


class TestDecode:
    def test_roundtrip_all_peers(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer0"),
                str(out / "peer1"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--digests",
                str(out / "digests.json"),
                "--out",
                str(dest),
            ]
        )
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()

    def test_single_peer_suffices(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer2"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--out",
                str(dest),
            ]
        )
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()

    def test_wrong_secret_fails_with_digests(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer0"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "WRONG",
                "--digests",
                str(out / "digests.json"),
                "--out",
                str(dest),
            ]
        )
        # Wrong secret -> coefficients differ; with digest auth present
        # the payloads still verify, but the decoded bytes would be
        # garbage ... except digests only authenticate payloads, not the
        # secret. The decode "succeeds" mechanically but outputs garbage:
        # verify it does NOT match the source.
        if code == 0:
            assert dest.read_bytes() != src.read_bytes()

    def test_missing_data_fails_cleanly(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        # Remove most .dat files from peer0 and decode only from it.
        dats = sorted((out / "peer0").glob("*.dat"))
        for dat in dats[1:]:
            os.unlink(dat)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer0"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--out",
                str(dest),
            ]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().err
        assert not dest.exists()


class TestUpdate:
    def _decode(self, out, dest, *sources):
        return main(
            [
                "decode",
                *[str(s) for s in sources],
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--digests",
                str(out / "digests.json"),
                "--out",
                str(dest),
            ]
        )

    def test_update_roundtrip(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        original = src.read_bytes()
        edited = bytearray(original)
        edited[1500] ^= 0xFF  # chunk 1 of 3
        src.write_bytes(bytes(edited))
        code = main(
            [
                "update",
                str(src),
                "--out",
                str(out),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--peers",
                "3",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "1 of 3 chunk(s)" in stdout

        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["version"] == 1
        assert manifest["chunk_versions"] == [0, 1, 0]

        dest = tmp / "restored.bin"
        assert self._decode(out, dest, out / "peer0", out / "peer1") == 0
        assert dest.read_bytes() == bytes(edited)

    def test_update_rejects_legacy_manifest(self, workspace, tmp_path):
        tmp, src, out = workspace
        encode(src, out)
        # Strip the version fields to fake a legacy manifest.
        blob = json.loads((out / "manifest.json").read_text())
        del blob["version"]
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps(blob))
        with pytest.raises(SystemExit):
            main(
                [
                    "update",
                    str(src),
                    "--out",
                    str(out),
                    "--manifest",
                    str(legacy),
                    "--secret",
                    "s3cret",
                    "--peers",
                    "3",
                ]
            )

    def test_update_wrong_peer_count(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        with pytest.raises(SystemExit):
            main(
                [
                    "update",
                    str(src),
                    "--out",
                    str(out),
                    "--manifest",
                    str(out / "manifest.json"),
                    "--secret",
                    "s3cret",
                    "--peers",
                    "7",
                ]
            )


class TestInspect:
    def test_lists_stores(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        code = main(["inspect", str(out / "peer0"), "--p", "16", "--m", "64"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "message(s)" in stdout
        assert stdout.count("file 0x") == 3


class TestSimulate:
    def test_fig5b_summary(self, capsys):
        code = main(["simulate", "fig5b"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "3 peers" in stdout
        assert "1024" in stdout


class TestChannel:
    def test_table(self, capsys):
        code = main(["channel", "--size", str(1 << 30)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "cable modem" in stdout
        assert "upload" in stdout and "download" in stdout


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_empty_secret_rejected(self, workspace):
        tmp, src, out = workspace
        with pytest.raises(SystemExit):
            main(["encode", str(src), "--out", str(out), "--secret", ""])

    def test_bad_source_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "decode",
                    str(tmp_path / "nope.txt"),
                    "--manifest",
                    "x",
                    "--secret",
                    "s",
                    "--out",
                    "y",
                ]
            )
