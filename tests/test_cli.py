"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path, rng):
    src = tmp_path / "video.bin"
    src.write_bytes(rng.bytes(3000))
    out = tmp_path / "encoded"
    return tmp_path, src, out


def encode(src, out, peers=3, chunk=1024, secret="s3cret"):
    return main(
        [
            "encode",
            str(src),
            "--out",
            str(out),
            "--secret",
            secret,
            "--peers",
            str(peers),
            "--p",
            "16",
            "--m",
            "64",
            "--chunk-bytes",
            str(chunk),
        ]
    )


class TestEncode:
    def test_creates_bundles_manifest_digests(self, workspace, capsys):
        tmp, src, out = workspace
        assert encode(src, out) == 0
        assert (out / "manifest.json").exists()
        assert (out / "digests.json").exists()
        for peer in range(3):
            dats = list((out / f"peer{peer}").glob("*.dat"))
            assert len(dats) == 3  # one per chunk
        stdout = capsys.readouterr().out
        assert "3 chunk(s)" in stdout

    def test_manifest_contents(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["total_length"] == 3000
        assert manifest["p"] == 16
        assert manifest["version"] == 0
        assert len(manifest["chunk_versions"]) == 3
        assert len(manifest["chunk_hashes"]) == 3


class TestDecode:
    def test_roundtrip_all_peers(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer0"),
                str(out / "peer1"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--digests",
                str(out / "digests.json"),
                "--out",
                str(dest),
            ]
        )
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()

    def test_single_peer_suffices(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer2"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--out",
                str(dest),
            ]
        )
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()

    def test_wrong_secret_fails_with_digests(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer0"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "WRONG",
                "--digests",
                str(out / "digests.json"),
                "--out",
                str(dest),
            ]
        )
        # Wrong secret -> coefficients differ; with digest auth present
        # the payloads still verify, but the decoded bytes would be
        # garbage ... except digests only authenticate payloads, not the
        # secret. The decode "succeeds" mechanically but outputs garbage:
        # verify it does NOT match the source.
        if code == 0:
            assert dest.read_bytes() != src.read_bytes()

    def test_missing_data_fails_cleanly(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        # Remove most .dat files from peer0 and decode only from it.
        dats = sorted((out / "peer0").glob("*.dat"))
        for dat in dats[1:]:
            os.unlink(dat)
        dest = tmp / "restored.bin"
        code = main(
            [
                "decode",
                str(out / "peer0"),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--out",
                str(dest),
            ]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().err
        assert not dest.exists()


class TestUpdate:
    def _decode(self, out, dest, *sources):
        return main(
            [
                "decode",
                *[str(s) for s in sources],
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--digests",
                str(out / "digests.json"),
                "--out",
                str(dest),
            ]
        )

    def test_update_roundtrip(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        original = src.read_bytes()
        edited = bytearray(original)
        edited[1500] ^= 0xFF  # chunk 1 of 3
        src.write_bytes(bytes(edited))
        code = main(
            [
                "update",
                str(src),
                "--out",
                str(out),
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--peers",
                "3",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "1 of 3 chunk(s)" in stdout

        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["version"] == 1
        assert manifest["chunk_versions"] == [0, 1, 0]

        dest = tmp / "restored.bin"
        assert self._decode(out, dest, out / "peer0", out / "peer1") == 0
        assert dest.read_bytes() == bytes(edited)

    def test_update_rejects_legacy_manifest(self, workspace, tmp_path):
        tmp, src, out = workspace
        encode(src, out)
        # Strip the version fields to fake a legacy manifest.
        blob = json.loads((out / "manifest.json").read_text())
        del blob["version"]
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps(blob))
        with pytest.raises(SystemExit):
            main(
                [
                    "update",
                    str(src),
                    "--out",
                    str(out),
                    "--manifest",
                    str(legacy),
                    "--secret",
                    "s3cret",
                    "--peers",
                    "3",
                ]
            )

    def test_update_wrong_peer_count(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        with pytest.raises(SystemExit):
            main(
                [
                    "update",
                    str(src),
                    "--out",
                    str(out),
                    "--manifest",
                    str(out / "manifest.json"),
                    "--secret",
                    "s3cret",
                    "--peers",
                    "7",
                ]
            )


class TestDownload:
    def _download(self, out, dest, *sources, extra=()):
        return main(
            [
                "download",
                *[str(s) for s in sources],
                "--manifest",
                str(out / "manifest.json"),
                "--secret",
                "s3cret",
                "--digests",
                str(out / "digests.json"),
                "--out",
                str(dest),
                *extra,
            ]
        )

    def test_roundtrip_without_faults(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = self._download(out, dest, out / "peer0", out / "peer1")
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()
        stdout = capsys.readouterr().out
        assert "0 faulty peer(s)" in stdout

    def test_faulty_peers_survived_and_named(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = self._download(
            out,
            dest,
            out / "peer0",
            out / "peer1",
            out / "peer2",
            extra=["--rate", "4", "--faults", "seed=7;1:pollute;2:crash@900"],
        )
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()
        stdout = capsys.readouterr().out
        assert "peer 1" in stdout and "polluted" in stdout
        assert "peer 2" in stdout and "crashed" in stdout

    def test_all_peers_refuse_fails_cleanly(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = self._download(
            out,
            dest,
            out / "peer0",
            extra=["--faults", "0:refuse", "--max-slots", "50"],
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().err
        assert not dest.exists()

    def test_fault_peer_out_of_range_rejected(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        with pytest.raises(SystemExit, match="peer 5"):
            self._download(
                out, tmp / "x.bin", out / "peer0", extra=["--faults", "5:refuse"]
            )

    def test_bad_fault_spec_rejected(self, workspace):
        tmp, src, out = workspace
        encode(src, out)
        with pytest.raises(SystemExit, match="bad --faults"):
            self._download(
                out, tmp / "x.bin", out / "peer0", extra=["--faults", "0:meltdown"]
            )

    def test_trace_records_fault_events(self, workspace, tmp_path):
        tmp, src, out = workspace
        encode(src, out)
        trace = tmp_path / "trace.jsonl"
        dest = tmp / "restored.bin"
        code = self._download(
            out,
            dest,
            out / "peer0",
            out / "peer1",
            extra=["--rate", "4", "--faults", "1:pollute", "--trace", str(trace)],
        )
        assert code == 0
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {e["name"] for e in events}
        assert "transfer.discard" in names
        assert "transfer.fault" in names


class TestInspect:
    def test_lists_stores(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        code = main(["inspect", str(out / "peer0"), "--p", "16", "--m", "64"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "message(s)" in stdout
        assert stdout.count("file 0x") == 3


class TestSimulate:
    def test_fig5b_summary(self, capsys):
        code = main(["simulate", "fig5b"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "3 peers" in stdout
        assert "1024" in stdout

    def test_faults_scenario_default_plan(self, capsys):
        code = main(["simulate", "faults"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "6 peers" in stdout
        assert "faulty: crash" in stdout
        assert "faulty: refuse" in stdout

    def test_faults_scenario_custom_plan(self, capsys):
        code = main(["simulate", "faults", "--faults", "0:stall@100+200"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "faulty: stall" in stdout
        assert "faulty: crash" not in stdout  # default plan replaced

    def test_faults_flag_requires_faults_scenario(self):
        with pytest.raises(SystemExit, match="faults"):
            main(["simulate", "fig5b", "--faults", "0:refuse"])

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit, match="bad --faults"):
            main(["simulate", "faults", "--faults", "0:meltdown"])


class TestChannel:
    def test_table(self, capsys):
        code = main(["channel", "--size", str(1 << 30)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "cable modem" in stdout
        assert "upload" in stdout and "download" in stdout


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_empty_secret_rejected(self, workspace):
        tmp, src, out = workspace
        with pytest.raises(SystemExit):
            main(["encode", str(src), "--out", str(out), "--secret", ""])

    def test_bad_source_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "decode",
                    str(tmp_path / "nope.txt"),
                    "--manifest",
                    "x",
                    "--secret",
                    "s",
                    "--out",
                    "y",
                ]
            )


class TestObservabilityFlags:
    def _decode_args(self, out, dest):
        return [
            "decode",
            str(out / "peer0"),
            str(out / "peer1"),
            str(out / "peer2"),
            "--manifest",
            str(out / "manifest.json"),
            "--secret",
            "s3cret",
            "--digests",
            str(out / "digests.json"),
            "--out",
            str(dest),
        ]

    def test_simulate_metrics_prints_snapshot(self, capsys):
        code = main(["simulate", "fig5b", "--metrics"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "repro.sim.slots" in stdout
        # Every registered metric appears, even ones this run never hit.
        assert "repro.rlnc.decode.innovative" in stdout
        assert "repro.gf.mul.ns" in stdout

    def test_simulate_trace_writes_monotonic_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(["simulate", "fig5b", "--trace", str(trace)])
        assert code == 0
        lines = trace.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        stamps = [e["mono_ns"] for e in events]
        assert stamps == sorted(stamps)
        assert any(e["name"] == "sim.slot" for e in events)

    def test_simulate_metrics_out_readable_by_stats(self, tmp_path, capsys):
        snap_file = tmp_path / "metrics.json"
        code = main(["simulate", "fig5b", "--metrics-out", str(snap_file)])
        assert code == 0
        snap = json.loads(snap_file.read_text())
        assert snap["repro.sim.slots"]["value"] > 0
        capsys.readouterr()
        assert main(["stats", str(snap_file)]) == 0
        assert "repro.sim.slots" in capsys.readouterr().out

    def test_simulate_json_round_trips(self, tmp_path, capsys):
        from repro.sim import SimulationResult

        out = tmp_path / "result.json"
        code = main(["simulate", "fig5b", "--json", str(out)])
        assert code == 0
        result = SimulationResult.from_dict(json.loads(out.read_text()))
        assert result.slots > 0 and result.n == 3

    def test_decode_metrics_counts_gf_work(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        dest = tmp / "restored.bin"
        code = main(self._decode_args(out, dest) + ["--metrics"])
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()
        stdout = capsys.readouterr().out
        assert "repro.gf.mul.calls" in stdout
        assert "repro.rlnc.decode.innovative" in stdout

    def test_flags_leave_observability_disabled_afterwards(self, capsys):
        from repro.obs import REGISTRY, TRACER

        assert main(["simulate", "fig5b", "--metrics"]) == 0
        assert not REGISTRY.enabled
        assert not TRACER.enabled


class TestStats:
    def test_catalog_lists_metrics_and_events(self, capsys):
        code = main(["stats"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "repro.gf.mul.calls" in stdout
        assert "repro.sim.alloc_ns" in stdout
        assert "rlnc.offer" in stdout
        assert "transfer.stop" in stdout

    def test_missing_snapshot_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "nope.json")])

    def test_non_snapshot_json_rejected(self, tmp_path):
        odd = tmp_path / "odd.json"
        odd.write_text('{"weird": 1}')
        with pytest.raises(SystemExit, match="not a metrics snapshot"):
            main(["stats", str(odd)])

    def test_format_json_round_trips(self, capsys):
        code = main(["stats", "--format", "json"])
        assert code == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["repro.sim.slots"]["kind"] == "counter"

    def test_format_openmetrics_validates(self, capsys):
        from repro.obs import validate_openmetrics

        code = main(["stats", "--format", "openmetrics"])
        assert code == 0
        text = capsys.readouterr().out
        validate_openmetrics(text)
        assert "repro_sim_slots_total" in text

    def test_snapshot_file_honors_format(self, tmp_path, capsys):
        from repro.obs import validate_openmetrics

        snap_file = tmp_path / "metrics.json"
        assert main(["simulate", "fig5b", "--metrics-out", str(snap_file)]) == 0
        capsys.readouterr()
        code = main(["stats", str(snap_file), "--format", "openmetrics"])
        assert code == 0
        text = capsys.readouterr().out
        validate_openmetrics(text)
        assert "repro_sim_slots_total" in text


class TestRunReports:
    def test_simulate_report_matches_result_fairness(self, tmp_path, capsys):
        rep_file = tmp_path / "report.json"
        code = main(
            ["simulate", "fig5b", "--report", "--report-json", str(rep_file)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "simulation report" in stdout
        assert "Jain" in stdout
        rep = json.loads(rep_file.read_text())
        assert rep["kind"] == "simulation"
        # The report's trajectory must reproduce the engine's per-slot
        # Jain values, which --report recomputes from the result arrays.
        from repro.obs.report import jain_trajectory
        from repro.sim.scenarios import figure_5b

        expected = jain_trajectory(figure_5b())
        assert rep["fairness"]["trajectory"] == expected
        assert rep["slots"] == len(expected)
        assert rep["trace"]["sim_slots"] == rep["slots"]

    def test_simulate_report_json_only_is_quiet(self, tmp_path, capsys):
        rep_file = tmp_path / "report.json"
        code = main(["simulate", "fig5b", "--report-json", str(rep_file)])
        assert code == 0
        assert "simulation report" not in capsys.readouterr().out
        assert json.loads(rep_file.read_text())["kind"] == "simulation"

    def test_download_report_aggregates_chunks(self, workspace, capsys):
        tmp, src, out = workspace
        encode(src, out)
        rep_file = tmp / "report.json"
        dest = tmp / "restored.bin"
        code = main(
            [
                "download",
                str(out / "peer0"),
                str(out / "peer1"),
                "--manifest", str(out / "manifest.json"),
                "--secret", "s3cret",
                "--digests", str(out / "digests.json"),
                "--out", str(dest),
                "--rate", "4",
                "--faults", "1:pollute",
                "--report",
                "--report-json", str(rep_file),
            ]
        )
        assert code == 0
        assert dest.read_bytes() == src.read_bytes()
        stdout = capsys.readouterr().out
        assert "download report" in stdout
        assert "critical path" in stdout
        rep = json.loads(rep_file.read_text())
        assert rep["kind"] == "download"
        assert rep["chunks"] == 3
        assert rep["complete"] is True
        assert any(f["kind"] == "polluted" for f in rep["failures"])
        assert rep["critical_path"][0]["op"] == "transfer.download"
        assert rep["time_in_state"]["1"]["fault"] == "polluted"


class TestTraceAnalyze:
    def test_reconstructs_download_span_tree(self, workspace, tmp_path, capsys):
        tmp, src, out = workspace
        encode(src, out)
        trace = tmp_path / "trace.jsonl"
        dest = tmp / "restored.bin"
        code = main(
            [
                "download",
                str(out / "peer0"),
                str(out / "peer1"),
                "--manifest", str(out / "manifest.json"),
                "--secret", "s3cret",
                "--digests", str(out / "digests.json"),
                "--out", str(dest),
                "--rate", "4",
                "--faults", "1:pollute",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "analyze", str(trace)]) == 0
        stdout = capsys.readouterr().out
        assert "transfer.download" in stdout
        assert "transfer.peer" in stdout
        assert "transfer.quarantine" in stdout
        assert "polluted" in stdout
        assert "critical path:" in stdout
        assert "time in state:" in stdout

    def test_simulation_trace_fairness_summary(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["simulate", "fig5b", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "analyze", str(trace)]) == 0
        stdout = capsys.readouterr().out
        assert "sim.run" in stdout
        assert "fairness timeline:" in stdout

    def test_unreadable_trace_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read trace"):
            main(["trace", "analyze", str(tmp_path / "nope.jsonl")])
