"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.gf import GF


@pytest.fixture
def rng():
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(params=[4, 8, 16, 32], ids=lambda p: f"GF(2^{p})")
def field(request):
    """Every field the paper uses, via the default (fastest) backend."""
    return GF(request.param)


@pytest.fixture(params=[8, 32], ids=lambda p: f"GF(2^{p})")
def field_fast(request):
    """A cheaper field sweep for expensive tests."""
    return GF(request.param)
