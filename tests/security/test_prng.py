"""Unit tests for the keyed deterministic symbol stream."""

import numpy as np
import pytest

from repro.security import SUPPORTED_SYMBOL_BITS, KeyedStream, derive_key


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(b"s", "a", 1) == derive_key(b"s", "a", 1)

    def test_sensitive_to_secret(self):
        assert derive_key(b"s1", "a") != derive_key(b"s2", "a")

    def test_sensitive_to_parts(self):
        assert derive_key(b"s", "a", "b") != derive_key(b"s", "ab")
        assert derive_key(b"s", b"ab", b"c") != derive_key(b"s", b"a", b"bc")

    def test_part_types(self):
        # str parts are UTF-8 encoded (so "1" == b"1"); ints use a fixed
        # 16-byte encoding distinct from their decimal string.
        assert derive_key(b"s", "1") == derive_key(b"s", b"1")
        assert derive_key(b"s", 1) != derive_key(b"s", "1")

    def test_output_is_32_bytes(self):
        assert len(derive_key(b"s", "x")) == 32


class TestKeyedStream:
    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            KeyedStream(b"")

    def test_deterministic_bytes(self):
        s = KeyedStream(b"key")
        assert s.bytes_for("label", 100) == s.bytes_for("label", 100)

    def test_prefix_property(self):
        s = KeyedStream(b"key")
        long = s.bytes_for("label", 200)
        assert s.bytes_for("label", 50) == long[:50]

    def test_labels_independent(self):
        s = KeyedStream(b"key")
        assert s.bytes_for("a", 64) != s.bytes_for("b", 64)

    def test_keys_independent(self):
        assert KeyedStream(b"k1").bytes_for("a", 64) != KeyedStream(b"k2").bytes_for(
            "a", 64
        )

    def test_count_zero(self):
        assert KeyedStream(b"k").bytes_for("a", 0) == b""

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            KeyedStream(b"k").bytes_for("a", -1)


class TestSymbols:
    @pytest.mark.parametrize("bits", SUPPORTED_SYMBOL_BITS)
    def test_count_and_range(self, bits):
        s = KeyedStream(b"key")
        out = s.symbols("lbl", 1000, bits)
        assert out.shape == (1000,)
        assert out.dtype == np.uint32
        assert int(out.max()) < (1 << bits)

    def test_odd_count_nibbles(self):
        s = KeyedStream(b"key")
        assert s.symbols("lbl", 7, 4).shape == (7,)

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            KeyedStream(b"k").symbols("a", 10, 12)

    @pytest.mark.parametrize("bits", SUPPORTED_SYMBOL_BITS)
    def test_roughly_uniform(self, bits):
        s = KeyedStream(b"key")
        out = s.symbols("uniform", 4000, bits).astype(np.float64)
        mean = out.mean() / ((1 << bits) - 1)
        assert 0.45 < mean < 0.55

    def test_deterministic(self):
        a = KeyedStream(b"key").symbols("x", 32, 16)
        b = KeyedStream(b"key").symbols("x", 32, 16)
        assert np.array_equal(a, b)


class TestFloats:
    def test_unit_interval(self):
        out = KeyedStream(b"key").floats("f", 500)
        assert np.all(out >= 0.0) and np.all(out < 1.0)

    def test_mean_near_half(self):
        out = KeyedStream(b"key").floats("f", 5000)
        assert 0.47 < out.mean() < 0.53


class TestSymbolsMany:
    @pytest.mark.parametrize("bits", [4, 8, 16, 32])
    @pytest.mark.parametrize("count", [1, 5, 7, 32])
    def test_identical_to_per_label_calls(self, bits, count):
        s = KeyedStream(b"key")
        labels = [0, 3, "x", 2**40, b"raw"]
        batch = s.symbols_many(labels, count, bits)
        singles = np.stack([s.symbols(lab, count, bits) for lab in labels])
        assert batch.tobytes() == singles.tobytes()

    def test_empty_labels(self):
        out = KeyedStream(b"key").symbols_many([], 9, 8)
        assert out.shape == (0, 9)
        assert out.dtype == np.uint32

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            KeyedStream(b"key").symbols_many([1], 4, 12)
