"""Unit and property tests for the Merkle digest commitment."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import (
    DigestStore,
    MerkleDigestIndex,
    MerkleProof,
    MerkleVerifier,
    merkle_root,
)


def digests_for(n, salt=b""):
    return {mid: hashlib.md5(salt + bytes([mid % 256])).digest() for mid in range(n)}


class TestIndexConstruction:
    def test_single_leaf(self):
        index = MerkleDigestIndex(digests_for(1))
        proof = index.prove(0)
        assert proof.siblings == ()
        assert proof.root() == index.root

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_all_proofs_verify(self, n):
        index = MerkleDigestIndex(digests_for(n))
        for mid in range(n):
            assert index.prove(mid).root() == index.root

    def test_root_independent_of_insertion_order(self):
        d = digests_for(10)
        shuffled = dict(sorted(d.items(), key=lambda kv: -kv[0]))
        assert MerkleDigestIndex(d).root == MerkleDigestIndex(shuffled).root

    def test_root_sensitive_to_any_digest(self):
        d = digests_for(8)
        base = merkle_root(d)
        for mid in d:
            tampered = dict(d)
            tampered[mid] = hashlib.md5(b"evil").digest()
            assert merkle_root(tampered) != base

    def test_root_sensitive_to_id_binding(self):
        d = digests_for(4)
        swapped = dict(d)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        assert merkle_root(swapped) != merkle_root(d)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleDigestIndex({})

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            MerkleDigestIndex(digests_for(4)).prove(99)

    def test_proof_depth_logarithmic(self):
        index = MerkleDigestIndex(digests_for(33))
        assert len(index.prove(0).siblings) == 6  # ceil(log2(33))


class TestMetadataSavings:
    def test_carried_bytes(self):
        index = MerkleDigestIndex(digests_for(1000))
        assert index.carried_bytes_plain() == 16_000
        assert index.carried_bytes_merkle() == 32

    def test_savings_motivating_case(self):
        """A 1 GB file at the paper's point: 1024 chunks x 8 messages x
        n peers — carrying 16 B each adds up; the root stays 32 B."""
        n_messages = 1024 * 8 * 4
        index = MerkleDigestIndex(digests_for(512) | digests_for(0))  # shape only
        assert 16 * n_messages > 500_000  # half an MB of plain metadata
        assert index.carried_bytes_merkle() == 32


class TestVerifier:
    @pytest.fixture
    def setup(self):
        payloads = {mid: bytes([mid]) * 10 for mid in range(8)}
        digests = {mid: hashlib.md5(p).digest() for mid, p in payloads.items()}
        index = MerkleDigestIndex(digests)
        verifier = MerkleVerifier({7: index.root})
        return payloads, index, verifier

    def test_admit_then_verify(self, setup):
        payloads, index, verifier = setup
        assert verifier.admit_proof(7, index.prove(3))
        assert verifier.verify(7, 3, payloads[3])
        assert verifier.proofs_accepted == 1

    def test_verify_without_proof_fails_closed(self, setup):
        payloads, index, verifier = setup
        assert not verifier.verify(7, 3, payloads[3])

    def test_wrong_root_rejected(self, setup):
        payloads, index, verifier = setup
        other = MerkleDigestIndex(digests_for(8, salt=b"x"))
        assert not verifier.admit_proof(7, other.prove(3))
        assert verifier.proofs_rejected == 1

    def test_unknown_file_rejected(self, setup):
        payloads, index, verifier = setup
        assert not verifier.admit_proof(99, index.prove(3))

    def test_tampered_payload_rejected(self, setup):
        payloads, index, verifier = setup
        verifier.admit_proof(7, index.prove(3))
        assert not verifier.verify(7, 3, payloads[3] + b"!")

    def test_forged_proof_rejected(self, setup):
        payloads, index, verifier = setup
        genuine = index.prove(3)
        forged = MerkleProof(
            message_id=3,
            digest=hashlib.md5(b"evil").digest(),
            index=genuine.index,
            siblings=genuine.siblings,
        )
        assert not verifier.admit_proof(7, forged)

    def test_plugs_into_progressive_decoder(self, rng):
        """End-to-end: decoder guarded by a MerkleVerifier instead of a
        digest list — the carried metadata drops to one root."""
        from repro.rlnc import CodingParams, FileEncoder, Offer, ProgressiveDecoder

        params = CodingParams(p=16, m=16, file_bytes=256)
        data = rng.bytes(256)
        store = DigestStore()
        encoder = FileEncoder(params, b"owner", file_id=5)
        encoded = encoder.encode_bundles(data, n_peers=1, digest_store=store)
        index = MerkleDigestIndex(store.slice_for_file(5))
        verifier = MerkleVerifier({5: index.root})

        decoder = ProgressiveDecoder(
            params, encoder.coefficients, digest_store=verifier
        )
        for msg in encoded.bundles[0]:
            # Without an admitted proof the message is rejected...
            assert decoder.offer(msg) == Offer.REJECTED
            # ...after the serving peer supplies the proof, it verifies.
            assert verifier.admit_proof(5, index.prove(msg.message_id))
            assert decoder.offer(msg) in (Offer.ACCEPTED, Offer.COMPLETE)
        assert decoder.result(len(data)) == data


class TestProofProperties:
    @given(
        n=st.integers(min_value=1, max_value=64),
        salt=st.binary(min_size=0, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_proof_verifies_every_forgery_fails(self, n, salt):
        d = digests_for(n, salt=salt)
        index = MerkleDigestIndex(d)
        for mid in list(d)[: min(n, 8)]:
            proof = index.prove(mid)
            assert proof.root() == index.root
            wrong = MerkleProof(
                message_id=proof.message_id,
                digest=hashlib.md5(b"f" + proof.digest).digest(),
                index=proof.index,
                siblings=proof.siblings,
            )
            assert wrong.root() != index.root

    @given(n=st.integers(min_value=2, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_proof_not_transferable_between_positions(self, n):
        index = MerkleDigestIndex(digests_for(n))
        p0 = index.prove(0)
        p1 = index.prove(1)
        crossed = MerkleProof(
            message_id=p0.message_id,
            digest=p0.digest,
            index=p1.index,
            siblings=p1.siblings,
        )
        assert crossed.root() != index.root
