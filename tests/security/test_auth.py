"""Unit tests for challenge-response authentication."""

import pytest

from repro.security import (
    AuthenticationError,
    Challenge,
    Prover,
    Verifier,
    generate_keypair,
    mutual_authenticate,
)


@pytest.fixture(scope="module")
def alice():
    return generate_keypair(bits=512, seed=100)


@pytest.fixture(scope="module")
def mallory():
    return generate_keypair(bits=512, seed=666)


class TestHappyPath:
    def test_valid_exchange(self, alice):
        verifier = Verifier(alice.public)
        challenge = verifier.issue_challenge()
        response = Prover(alice.private).respond(challenge)
        assert verifier.verify(challenge, response)

    def test_require_passes(self, alice):
        verifier = Verifier(alice.public)
        challenge = verifier.issue_challenge()
        verifier.require(challenge, Prover(alice.private).respond(challenge))

    def test_mutual(self, alice, mallory):
        bob = generate_keypair(bits=512, seed=101)
        assert mutual_authenticate(alice, bob)


class TestAttacks:
    def test_wrong_key_rejected(self, alice, mallory):
        verifier = Verifier(alice.public)
        challenge = verifier.issue_challenge()
        forged = Prover(mallory.private).respond(challenge)
        assert not verifier.verify(challenge, forged)

    def test_replay_rejected(self, alice):
        verifier = Verifier(alice.public)
        challenge = verifier.issue_challenge()
        response = Prover(alice.private).respond(challenge)
        assert verifier.verify(challenge, response)
        # Second presentation of the same (challenge, response) fails.
        assert not verifier.verify(challenge, response)

    def test_self_made_challenge_rejected(self, alice):
        verifier = Verifier(alice.public)
        fake = Challenge(nonce=b"\x00" * 32, context=verifier.context)
        response = Prover(alice.private).respond(fake)
        assert not verifier.verify(fake, response)

    def test_context_binding(self, alice):
        """A response for one context must not validate another context's
        challenge with the same nonce."""
        v1 = Verifier(alice.public, context=b"download file A")
        c1 = v1.issue_challenge()
        cross = Challenge(nonce=c1.nonce, context=b"delete file A")
        response = Prover(alice.private).respond(cross)
        assert not v1.verify(c1, response)

    def test_require_raises(self, alice, mallory):
        verifier = Verifier(alice.public)
        challenge = verifier.issue_challenge()
        forged = Prover(mallory.private).respond(challenge)
        with pytest.raises(AuthenticationError):
            verifier.require(challenge, forged)

    def test_mutual_fails_with_imposter(self, alice, mallory):
        # Mallory claims to be Bob but holds her own private key.
        bob = generate_keypair(bits=512, seed=101)
        from repro.security import KeyPair

        imposter = KeyPair(bob.public, mallory.private)
        assert not mutual_authenticate(alice, imposter)


class TestChallengeProperties:
    def test_nonces_unique(self, alice):
        verifier = Verifier(alice.public)
        nonces = {verifier.issue_challenge().nonce for _ in range(100)}
        assert len(nonces) == 100

    def test_payload_binds_context_and_nonce(self):
        c = Challenge(nonce=b"N" * 32, context=b"ctx")
        assert b"ctx" in c.payload()
        assert b"N" * 32 in c.payload()
