"""Unit tests for the per-message digest store (Section III-C)."""

import pytest

from repro.security import DigestStore, IntegrityError


class TestRecordVerify:
    def test_roundtrip(self):
        store = DigestStore()
        store.record(1, 2, b"payload")
        assert store.verify(1, 2, b"payload")

    def test_tamper_detected(self):
        store = DigestStore()
        store.record(1, 2, b"payload")
        assert not store.verify(1, 2, b"payloaD")

    def test_unknown_message_fails_closed(self):
        store = DigestStore()
        assert not store.verify(9, 9, b"anything")

    def test_require(self):
        store = DigestStore()
        store.record(1, 2, b"x")
        store.require(1, 2, b"x")
        with pytest.raises(IntegrityError):
            store.require(1, 2, b"y")

    def test_re_record_overwrites(self):
        store = DigestStore()
        store.record(1, 2, b"old")
        store.record(1, 2, b"new")
        assert store.verify(1, 2, b"new")
        assert not store.verify(1, 2, b"old")


class TestAlgorithms:
    def test_md5_is_default_and_16_bytes(self):
        store = DigestStore()
        assert store.algorithm == "md5"
        assert len(store.record(1, 1, b"data")) == 16

    def test_sha256_supported(self):
        store = DigestStore(algorithm="sha256")
        assert len(store.record(1, 1, b"data")) == 32
        assert store.verify(1, 1, b"data")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            DigestStore(algorithm="crc32")


class TestSlices:
    def test_slice_for_file(self):
        store = DigestStore()
        store.record(1, 0, b"a")
        store.record(1, 1, b"b")
        store.record(2, 0, b"c")
        s = store.slice_for_file(1)
        assert set(s) == {0, 1}

    def test_merge_into_fresh_store(self):
        owner = DigestStore()
        owner.record(7, 3, b"msg")
        carried = DigestStore()
        carried.merge(7, owner.slice_for_file(7))
        assert carried.verify(7, 3, b"msg")
        assert not carried.verify(7, 3, b"forged")

    def test_len(self):
        store = DigestStore()
        assert len(store) == 0
        store.record(1, 1, b"x")
        store.record(1, 2, b"y")
        assert len(store) == 2


class TestOverhead:
    def test_paper_overhead_figure(self):
        """Section III-C: for k=8 this is '128 hash bytes per megabyte'."""
        store = DigestStore()
        for mid in range(8):  # k = 8 messages for 1 MB at the example point
            store.record(1, mid, bytes([mid]))
        assert store.overhead_bytes(1) == 128

    def test_overhead_scales_with_algorithm(self):
        store = DigestStore(algorithm="sha256")
        for mid in range(8):
            store.record(1, mid, bytes([mid]))
        assert store.overhead_bytes(1) == 256


class TestConstantTimeComparison:
    def test_verify_uses_compare_digest(self, monkeypatch):
        """The digest comparison must go through hmac.compare_digest so
        the owner's verify path cannot become a byte-at-a-time timing
        oracle (see the verify docstring)."""
        from repro.security import integrity

        real_compare = integrity.hmac.compare_digest
        calls = []

        def spy(a, b):
            calls.append((bytes(a), bytes(b)))
            return real_compare(a, b)

        monkeypatch.setattr(integrity.hmac, "compare_digest", spy)
        store = DigestStore()
        store.record(1, 0, b"payload")
        assert store.verify(1, 0, b"payload")
        assert not store.verify(1, 0, b"forged!")
        assert len(calls) == 2

    def test_unknown_pair_short_circuits_without_comparison(self, monkeypatch):
        """Unknown (file, message) ids fail closed before any digest is
        compared — there is nothing secret to leak about absent entries."""
        from repro.security import integrity

        def boom(a, b):  # pragma: no cover - must not be reached
            raise AssertionError("compare_digest called for unknown id")

        monkeypatch.setattr(integrity.hmac, "compare_digest", boom)
        store = DigestStore()
        assert not store.verify(1, 0, b"payload")

    def test_near_miss_digest_rejected(self):
        """A forged payload whose digest shares a long prefix with the
        real one is still rejected (equality is exact, not prefix)."""
        store = DigestStore()
        digest = store.record(1, 0, b"payload")
        # Plant an almost-identical digest under another id and check
        # the true payload does not verify against it.
        store._digests[(1, 1)] = digest[:-1] + bytes([digest[-1] ^ 1])
        assert not store.verify(1, 1, b"payload")
