"""Unit tests for the per-message digest store (Section III-C)."""

import pytest

from repro.security import DigestStore, IntegrityError


class TestRecordVerify:
    def test_roundtrip(self):
        store = DigestStore()
        store.record(1, 2, b"payload")
        assert store.verify(1, 2, b"payload")

    def test_tamper_detected(self):
        store = DigestStore()
        store.record(1, 2, b"payload")
        assert not store.verify(1, 2, b"payloaD")

    def test_unknown_message_fails_closed(self):
        store = DigestStore()
        assert not store.verify(9, 9, b"anything")

    def test_require(self):
        store = DigestStore()
        store.record(1, 2, b"x")
        store.require(1, 2, b"x")
        with pytest.raises(IntegrityError):
            store.require(1, 2, b"y")

    def test_re_record_overwrites(self):
        store = DigestStore()
        store.record(1, 2, b"old")
        store.record(1, 2, b"new")
        assert store.verify(1, 2, b"new")
        assert not store.verify(1, 2, b"old")


class TestAlgorithms:
    def test_md5_is_default_and_16_bytes(self):
        store = DigestStore()
        assert store.algorithm == "md5"
        assert len(store.record(1, 1, b"data")) == 16

    def test_sha256_supported(self):
        store = DigestStore(algorithm="sha256")
        assert len(store.record(1, 1, b"data")) == 32
        assert store.verify(1, 1, b"data")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            DigestStore(algorithm="crc32")


class TestSlices:
    def test_slice_for_file(self):
        store = DigestStore()
        store.record(1, 0, b"a")
        store.record(1, 1, b"b")
        store.record(2, 0, b"c")
        s = store.slice_for_file(1)
        assert set(s) == {0, 1}

    def test_merge_into_fresh_store(self):
        owner = DigestStore()
        owner.record(7, 3, b"msg")
        carried = DigestStore()
        carried.merge(7, owner.slice_for_file(7))
        assert carried.verify(7, 3, b"msg")
        assert not carried.verify(7, 3, b"forged")

    def test_len(self):
        store = DigestStore()
        assert len(store) == 0
        store.record(1, 1, b"x")
        store.record(1, 2, b"y")
        assert len(store) == 2


class TestOverhead:
    def test_paper_overhead_figure(self):
        """Section III-C: for k=8 this is '128 hash bytes per megabyte'."""
        store = DigestStore()
        for mid in range(8):  # k = 8 messages for 1 MB at the example point
            store.record(1, mid, bytes([mid]))
        assert store.overhead_bytes(1) == 128

    def test_overhead_scales_with_algorithm(self):
        store = DigestStore(algorithm="sha256")
        for mid in range(8):
            store.record(1, mid, bytes([mid]))
        assert store.overhead_bytes(1) == 256
