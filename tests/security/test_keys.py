"""Unit tests for RSA key material."""

import pytest

from repro.security import generate_keypair, is_probable_prime


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 97, 101, 65537):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 91, 561, 65535):
            assert not is_probable_prime(n), n

    def test_carmichael(self):
        # 561, 1105, 1729 are Carmichael numbers (fool Fermat, not MR).
        for n in (561, 1105, 1729):
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        assert is_probable_prime(2**127 - 1)  # Mersenne prime
        assert not is_probable_prime(2**128 - 1)


class TestKeyGeneration:
    def test_deterministic_with_seed(self):
        a = generate_keypair(bits=256, seed=7)
        b = generate_keypair(bits=256, seed=7)
        assert a.public.n == b.public.n

    def test_different_seeds_differ(self):
        assert (
            generate_keypair(bits=256, seed=1).public.n
            != generate_keypair(bits=256, seed=2).public.n
        )

    def test_modulus_size(self):
        kp = generate_keypair(bits=256, seed=3)
        assert 250 <= kp.public.n.bit_length() <= 257

    def test_tiny_keys_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=32)


class TestSignVerify:
    @pytest.fixture(scope="class")
    def kp(self):
        return generate_keypair(bits=512, seed=42)

    def test_roundtrip(self, kp):
        sig = kp.private.sign(b"hello world")
        assert kp.public.verify(b"hello world", sig)

    def test_wrong_message_fails(self, kp):
        sig = kp.private.sign(b"hello")
        assert not kp.public.verify(b"HELLO", sig)

    def test_wrong_key_fails(self, kp):
        other = generate_keypair(bits=512, seed=43)
        sig = kp.private.sign(b"msg")
        assert not other.public.verify(b"msg", sig)

    def test_out_of_range_signature(self, kp):
        assert not kp.public.verify(b"msg", 0)
        assert not kp.public.verify(b"msg", kp.public.n)

    def test_signature_deterministic(self, kp):
        assert kp.private.sign(b"m") == kp.private.sign(b"m")


class TestEncryptDecrypt:
    @pytest.fixture(scope="class")
    def kp(self):
        return generate_keypair(bits=512, seed=11)

    def test_roundtrip(self, kp):
        value = 123456789
        assert kp.private.decrypt(kp.public.encrypt(value)) == value

    def test_range_enforced(self, kp):
        with pytest.raises(ValueError):
            kp.public.encrypt(kp.public.n)
        with pytest.raises(ValueError):
            kp.private.decrypt(-1)


class TestFingerprint:
    def test_stable_and_short(self):
        kp = generate_keypair(bits=256, seed=5)
        fp = kp.public.fingerprint()
        assert fp == kp.public.fingerprint()
        assert len(fp) == 16

    def test_distinct_keys_distinct_fp(self):
        a = generate_keypair(bits=256, seed=5)
        b = generate_keypair(bits=256, seed=6)
        assert a.public.fingerprint() != b.public.fingerprint()
