"""Unit tests for per-peer message storage and File-id.dat persistence."""

import numpy as np
import pytest

from repro.rlnc import CodingParams, FileEncoder
from repro.storage import MessageStore, ServingCursor, StorageError

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8


@pytest.fixture
def messages(rng):
    encoder = FileEncoder(PARAMS, b"s", file_id=0x11)
    encoded = encoder.encode_bundles(rng.bytes(500), n_peers=2)
    return encoded.all_messages()


class TestAddAndQuery:
    def test_add_and_count(self, messages):
        store = MessageStore()
        assert store.add_messages(messages) == len(messages)
        assert store.count(0x11) == len(messages)
        assert store.files() == [0x11]
        assert store.has_file(0x11)

    def test_limit_per_call(self, messages):
        store = MessageStore()
        kept = store.add_messages(messages, limit=3)
        assert kept == 3
        assert store.count(0x11) == 3

    def test_messages_copy(self, messages):
        store = MessageStore()
        store.add_messages(messages[:2])
        listed = store.messages(0x11)
        listed.append("sentinel")
        assert store.count(0x11) == 2

    def test_unknown_file_raises(self):
        store = MessageStore()
        with pytest.raises(StorageError):
            store.messages(0x99)
        with pytest.raises(StorageError):
            store.open_cursor(0x99)

    def test_total_bytes(self, messages):
        store = MessageStore()
        store.add_messages(messages[:4])
        assert store.total_bytes() == sum(m.wire_size() for m in messages[:4])

    def test_drop_file(self, messages):
        store = MessageStore()
        store.add_messages(messages)
        store.drop_file(0x11)
        assert not store.has_file(0x11)
        assert store.count(0x11) == 0


class TestServingCursor:
    def test_serial_order(self, messages):
        store = MessageStore()
        store.add_messages(messages[:5])
        cursor = store.open_cursor(0x11)
        served = [cursor.advance() for _ in range(5)]
        assert [m.message_id for m in served] == [m.message_id for m in messages[:5]]

    def test_exhaustion(self, messages):
        store = MessageStore()
        store.add_messages(messages[:2])
        cursor = store.open_cursor(0x11)
        cursor.advance()
        cursor.advance()
        assert cursor.exhausted
        assert cursor.peek() is None
        with pytest.raises(StorageError):
            cursor.advance()

    def test_remaining_counts_down(self, messages):
        store = MessageStore()
        store.add_messages(messages[:3])
        cursor = store.open_cursor(0x11)
        assert cursor.remaining == 3
        cursor.advance()
        assert cursor.remaining == 2

    def test_independent_cursors(self, messages):
        store = MessageStore()
        store.add_messages(messages[:3])
        a = store.open_cursor(0x11)
        b = store.open_cursor(0x11)
        a.advance()
        assert b.remaining == 3

    def test_peek_does_not_consume(self, messages):
        store = MessageStore()
        store.add_messages(messages[:2])
        cursor = store.open_cursor(0x11)
        assert cursor.peek() is cursor.peek()
        assert cursor.remaining == 2


class TestDatPersistence:
    def test_save_load_roundtrip(self, messages, tmp_path):
        store = MessageStore()
        store.add_messages(messages)
        paths = store.save_dat(str(tmp_path))
        assert len(paths) == 1
        assert paths[0].endswith("0000000000000011.dat")

        loaded = MessageStore()
        count = loaded.load_dat(paths[0], p=PARAMS.p, m=PARAMS.m)
        assert count == len(messages)
        original = store.messages(0x11)
        restored = loaded.messages(0x11)
        for a, b in zip(original, restored):
            assert a.message_id == b.message_id
            assert np.array_equal(a.payload, b.payload)

    def test_corrupt_dat_rejected(self, messages, tmp_path):
        store = MessageStore()
        store.add_messages(messages[:2])
        path = store.save_dat(str(tmp_path))[0]
        with open(path, "ab") as fh:
            fh.write(b"\x00")  # break record alignment
        with pytest.raises(StorageError):
            MessageStore().load_dat(path, p=PARAMS.p, m=PARAMS.m)

    def test_multiple_files_saved_separately(self, rng, tmp_path):
        store = MessageStore()
        for fid in (1, 2):
            enc = FileEncoder(PARAMS, b"s", file_id=fid)
            store.add_messages(enc.encode_bundles(rng.bytes(100), 1).all_messages())
        assert len(store.save_dat(str(tmp_path))) == 2


class TestCursorStaleness:
    def test_drop_file_invalidates_open_cursor(self, messages):
        # Regression: dropping a file used to leave open cursors serving
        # from the orphaned message list as if nothing happened.
        store = MessageStore()
        store.add_messages(messages)
        cursor = store.open_cursor(0x11)
        cursor.advance()
        store.drop_file(0x11)
        assert cursor.stale
        assert cursor.remaining == 0
        assert cursor.exhausted  # ServingSession.active degrades cleanly
        with pytest.raises(StorageError, match="dropped while a serving"):
            cursor.peek()
        with pytest.raises(StorageError, match="dropped while a serving"):
            cursor.advance()

    def test_republished_file_does_not_revive_old_cursor(self, messages):
        store = MessageStore()
        store.add_messages(messages)
        cursor = store.open_cursor(0x11)
        store.drop_file(0x11)
        store.add_messages(messages)  # fresh backing list, same file id
        assert cursor.stale
        with pytest.raises(StorageError):
            cursor.peek()
        assert not store.open_cursor(0x11).stale

    def test_dropping_other_file_leaves_cursor_live(self, rng, messages):
        other = FileEncoder(PARAMS, b"s", file_id=0x22)
        store = MessageStore()
        store.add_messages(messages)
        store.add_messages(other.encode_bundles(rng.bytes(64), n_peers=1).all_messages())
        cursor = store.open_cursor(0x11)
        store.drop_file(0x22)
        assert not cursor.stale
        assert cursor.peek() is not None

    def test_detached_cursor_never_goes_stale(self, messages):
        cursor = ServingCursor(messages)
        assert not cursor.stale
        assert cursor.advance() is messages[0]
