"""Unit tests specific to the GF(2^32) tower-field backend."""

import numpy as np
import pytest

from repro.gf import FieldError, TowerField
from repro.gf.tower import _find_trace_one, _trace


@pytest.fixture(scope="module")
def F():
    return TowerField()


class TestConstruction:
    def test_basic_attributes(self, F):
        assert F.p == 32
        assert F.q == 1 << 32

    def test_c_has_trace_one(self, F):
        assert _trace(F.base, int(F.c)) == 1

    def test_c_is_minimal(self, F):
        for c in range(1, int(F.c)):
            assert _trace(F.base, c) == 0

    def test_trace_of_one_is_zero(self, F):
        # deg(GF(2^16)/GF(2)) = 16 is even, so Tr(1) = 0 — this is why
        # c = 1 cannot be used.
        assert _trace(F.base, 1) == 0

    def test_find_trace_one_matches(self, F):
        assert _find_trace_one(F.base) == int(F.c)


class TestEmbeddedBaseField:
    """The subfield {lo 16 bits} must behave exactly like GF(2^16)."""

    def test_base_embedding_multiplies_consistently(self, F, rng):
        a = F.base.random(500, rng).astype(np.uint32)
        b = F.base.random(500, rng).astype(np.uint32)
        # Elements with hi = 0 multiply inside the base field.
        assert np.array_equal(F.mul(a, b), F.base.mul(a, b).astype(np.uint32))

    def test_base_inverse_consistent(self, F, rng):
        a = F.base.random_nonzero(200, rng).astype(np.uint32)
        assert np.array_equal(F.inv(a), F.base.inv(a).astype(np.uint32))


class TestQuadraticStructure:
    def test_y_squared_equals_y_plus_c(self, F):
        y = np.uint32(1 << 16)
        y2 = F.mul(y, y)
        assert int(y2) == (1 << 16) ^ int(F.c)

    def test_norm_formula(self, F, rng):
        # (a1 y + a0)(a1 y + a0 + a1) must land in the base field
        # (hi part zero) — the norm used by inv().
        a = F.random_nonzero(300, rng)
        a1 = (a >> np.uint32(16)).astype(np.uint32)
        conj = ((a1.astype(np.uint64) << 16) | ((a ^ (a1 << np.uint32(0))) & np.uint32(0xFFFF))).astype(np.uint32)
        # conj = a1*y + (a0 + a1): build explicitly
        a0 = a & np.uint32(0xFFFF)
        conj = ((a1.astype(np.uint32) << np.uint32(16)) | (a0 ^ a1))
        prod = F.mul(a, conj)
        assert np.all((prod >> np.uint32(16)) == 0)

    def test_inverse_roundtrip_large_sample(self, F, rng):
        a = F.random_nonzero(5000, rng)
        assert np.all(F.mul(a, F.inv(a)) == 1)

    def test_inv_zero_raises(self, F):
        with pytest.raises(FieldError):
            F.inv(np.zeros(3, dtype=np.uint32))


class TestAxiomsSampled:
    def test_distributivity(self, F, rng):
        a, b, c = (F.random(2000, rng) for _ in range(3))
        assert np.array_equal(F.mul(a, b ^ c), F.mul(a, b) ^ F.mul(a, c))

    def test_associativity(self, F, rng):
        a, b, c = (F.random(2000, rng) for _ in range(3))
        assert np.array_equal(F.mul(F.mul(a, b), c), F.mul(a, F.mul(b, c)))

    def test_commutativity(self, F, rng):
        a, b = F.random(2000, rng), F.random(2000, rng)
        assert np.array_equal(F.mul(a, b), F.mul(b, a))

    def test_no_zero_divisors(self, F, rng):
        a = F.random_nonzero(2000, rng)
        b = F.random_nonzero(2000, rng)
        assert np.all(F.mul(a, b) != 0)
