"""Unit tests for the generic carry-less-multiply field backend."""

import numpy as np
import pytest

from repro.gf import ClmulField, FieldError, TableField
from repro.gf.polynomials import poly_mod, poly_mul


class TestConstruction:
    def test_supported_range(self):
        assert ClmulField(1).q == 2
        assert ClmulField(32).q == 1 << 32
        with pytest.raises(FieldError):
            ClmulField(0)
        with pytest.raises(FieldError):
            ClmulField(33)

    def test_default_modulus_matches_tables(self):
        for p in (4, 8, 16):
            assert ClmulField(p).modulus == TableField(p).modulus


class TestAgainstTables:
    """The clmul field must agree with the table field element-for-element."""

    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_full_agreement_on_sample(self, p, rng):
        T = TableField(p)
        C = ClmulField(p, T.modulus)
        a = T.random(2000, rng)
        b = T.random(2000, rng)
        assert np.array_equal(T.mul(a, b), C.mul(a, b))

    def test_exhaustive_gf16(self):
        T = TableField(4)
        C = ClmulField(4, T.modulus)
        a, b = np.meshgrid(np.arange(16, dtype=np.uint32), np.arange(16, dtype=np.uint32))
        assert np.array_equal(T.mul(a, b), C.mul(a, b))

    @pytest.mark.parametrize("p", [4, 8])
    def test_inverse_agreement(self, p, rng):
        T = TableField(p)
        C = ClmulField(p, T.modulus)
        a = T.random_nonzero(300, rng)
        assert np.array_equal(T.inv(a), C.inv(a))


class TestAgainstIntPolynomials:
    """Cross-check the vectorised path against the scalar int reference."""

    @pytest.mark.parametrize("p", [5, 12, 20, 29, 32])
    def test_scalar_agreement(self, p, rng):
        F = ClmulField(p)
        a = F.random(64, rng)
        b = F.random(64, rng)
        out = F.mul(a, b)
        for x, y, z in zip(a.tolist(), b.tolist(), out.tolist()):
            assert poly_mod(poly_mul(x, y), F.modulus) == z


class TestOddSizes:
    """Fields outside the paper's set still satisfy the axioms."""

    @pytest.mark.parametrize("p", [3, 7, 13, 24])
    def test_axioms(self, p, rng):
        F = ClmulField(p)
        a, b, c = (F.random(400, rng) for _ in range(3))
        assert np.array_equal(F.mul(a, b), F.mul(b, a))
        assert np.array_equal(F.mul(F.mul(a, b), c), F.mul(a, F.mul(b, c)))
        assert np.array_equal(F.mul(a, b ^ c), F.mul(a, b) ^ F.mul(a, c))
        nz = F.random_nonzero(100, rng)
        assert np.all(F.mul(nz, F.inv(nz)) == 1)

    def test_inv_zero_raises(self):
        with pytest.raises(FieldError):
            ClmulField(7).inv(0)
