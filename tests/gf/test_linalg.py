"""Unit tests for Gauss-Jordan elimination, inversion, solve and the
incremental rank tracker."""

import numpy as np
import pytest

from repro.gf import (
    FieldError,
    IncrementalRank,
    SingularMatrixError,
    inv_matrix,
    is_invertible,
    random_invertible,
    rank,
    row_reduce,
    solve,
)


def identity(field, n):
    eye = field.zeros((n, n))
    eye[np.arange(n), np.arange(n)] = 1
    return eye


class TestRowReduce:
    def test_identity_is_fixed_point(self, field):
        eye = identity(field, 5)
        reduced, r = row_reduce(field, eye)
        assert r == 5
        assert np.array_equal(reduced, eye)

    def test_zero_matrix(self, field):
        reduced, r = row_reduce(field, field.zeros((3, 4)))
        assert r == 0
        assert np.all(reduced == 0)

    def test_input_not_modified(self, field, rng):
        A = field.random((4, 4), rng)
        original = A.copy()
        row_reduce(field, A)
        assert np.array_equal(A, original)

    def test_duplicated_rows_lose_rank(self, field, rng):
        A = field.random((3, 5), rng)
        stacked = np.vstack([A, A])
        assert rank(field, stacked) == rank(field, A)

    def test_rectangular_wide_and_tall(self, field, rng):
        wide = field.random((3, 10), rng)
        tall = field.random((10, 3), rng)
        assert rank(field, wide) <= 3
        assert rank(field, tall) <= 3

    def test_rejects_non_2d(self, field):
        with pytest.raises(FieldError):
            row_reduce(field, field.zeros(4))


class TestRank:
    def test_linear_combination_rows(self, field_fast, rng):
        F = field_fast
        A = F.random((3, 6), rng)
        while rank(F, A) < 3:
            A = F.random((3, 6), rng)
        combo = F.mul(np.uint32(3 % F.q), A[0]) ^ A[1]
        B = np.vstack([A, combo[None, :]])
        assert rank(F, B) == 3

    def test_random_square_full_rank_whp(self, field_fast, rng):
        # For q >= 256 a random 8x8 is invertible with prob > 0.99.
        F = field_fast
        full = sum(rank(F, F.random((8, 8), rng)) == 8 for _ in range(20))
        assert full >= 18


class TestInverse:
    def test_roundtrip(self, field, rng):
        A = random_invertible(field, 7, rng)
        Ainv = inv_matrix(field, A)
        assert np.array_equal(field.matmul(A, Ainv), identity(field, 7))
        assert np.array_equal(field.matmul(Ainv, A), identity(field, 7))

    def test_inverse_of_identity(self, field):
        eye = identity(field, 4)
        assert np.array_equal(inv_matrix(field, eye), eye)

    def test_singular_raises(self, field):
        singular = field.zeros((3, 3))
        singular[0, 0] = 1
        with pytest.raises(SingularMatrixError):
            inv_matrix(field, singular)

    def test_non_square_raises(self, field, rng):
        with pytest.raises(FieldError):
            inv_matrix(field, field.random((2, 3), rng))

    def test_1x1(self, field):
        A = field.asarray([[3 % field.q or 1]])
        Ainv = inv_matrix(field, A)
        assert field.mul(A[0, 0], Ainv[0, 0]) == 1


class TestSolve:
    def test_vector_rhs(self, field, rng):
        A = random_invertible(field, 6, rng)
        x = field.random(6, rng)
        b = field.matmul(A, x[:, None])[:, 0]
        assert np.array_equal(solve(field, A, b), x)

    def test_matrix_rhs(self, field, rng):
        A = random_invertible(field, 6, rng)
        X = field.random((6, 9), rng)
        B = field.matmul(A, X)
        assert np.array_equal(solve(field, A, B), X)

    def test_singular_raises(self, field):
        with pytest.raises(SingularMatrixError):
            solve(field, field.zeros((2, 2)), field.zeros(2))

    def test_shape_mismatch(self, field, rng):
        A = random_invertible(field, 3, rng)
        with pytest.raises(FieldError):
            solve(field, A, field.zeros(4))


class TestIsInvertible:
    def test_detects(self, field, rng):
        assert is_invertible(field, random_invertible(field, 5, rng))
        assert not is_invertible(field, field.zeros((5, 5)))
        assert not is_invertible(field, field.random((3, 4), rng))


class TestIncrementalRank:
    def test_matches_batch_rank(self, field_fast, rng):
        F = field_fast
        A = F.random((10, 6), rng)
        inc = IncrementalRank(F, 6)
        for row in A:
            inc.offer(row)
        assert inc.rank == rank(F, A)

    def test_rejects_dependent_rows(self, field, rng):
        F = field
        base = F.random(8, rng)
        inc = IncrementalRank(F, 8)
        assert inc.offer(base)
        assert not inc.offer(base)  # identical
        scaled = F.mul(np.uint32(2 % F.q or 1), base)
        if not np.array_equal(scaled, base):
            assert not inc.offer(scaled)  # scalar multiple

    def test_zero_row_rejected(self, field):
        inc = IncrementalRank(field, 5)
        assert not inc.offer(field.zeros(5))
        assert inc.rank == 0

    def test_wrong_width_raises(self, field):
        inc = IncrementalRank(field, 5)
        with pytest.raises(FieldError):
            inc.offer(field.zeros(4))

    def test_rank_caps_at_width(self, field_fast, rng):
        F = field_fast
        inc = IncrementalRank(F, 4)
        added = sum(inc.offer(F.random(4, rng)) for _ in range(50))
        assert inc.rank == 4
        assert added == 4


class TestRandomInvertible:
    def test_always_invertible(self, field_fast, rng):
        for n in (1, 2, 5):
            A = random_invertible(field_fast, n, rng)
            assert is_invertible(field_fast, A)
