"""Unit tests for the table-based fields and the shared field interface."""

import numpy as np
import pytest

from repro.gf import GF, ClmulField, FieldError, TableField
from repro.gf.field import DTYPE


class TestConstruction:
    def test_gf_factory_caches(self):
        assert GF(8) is GF(8)
        assert GF(8) is not GF(4)

    def test_backend_selection(self):
        assert isinstance(GF(4), TableField)
        assert isinstance(GF(16), TableField)
        assert type(GF(32)).__name__ == "TowerField"
        assert isinstance(GF(8, impl="clmul"), ClmulField)

    def test_table_field_rejects_large_p(self):
        with pytest.raises(FieldError):
            TableField(20)

    def test_rejects_non_primitive_modulus(self):
        # x^8+x^4+x^3+x+1 (AES) is irreducible but not primitive.
        with pytest.raises(FieldError):
            TableField(8, modulus=0x11B)

    def test_rejects_wrong_degree_modulus(self):
        with pytest.raises(FieldError):
            TableField(8, modulus=0x13)

    def test_unknown_impl(self):
        with pytest.raises(FieldError):
            GF(8, impl="fpga")

    def test_attributes(self):
        F = GF(8)
        assert F.p == 8
        assert F.q == 256
        assert F.order == 256
        assert F.dtype == DTYPE


class TestArithmetic:
    def test_add_is_xor(self, field, rng):
        a = field.random(100, rng)
        b = field.random(100, rng)
        assert np.array_equal(field.add(a, b), a ^ b)
        assert np.array_equal(field.sub(a, b), a ^ b)

    def test_mul_identity(self, field, rng):
        a = field.random(100, rng)
        assert np.array_equal(field.mul(a, 1), a)
        assert np.all(field.mul(a, 0) == 0)

    def test_inverse(self, field, rng):
        a = field.random_nonzero(200, rng)
        assert np.all(field.mul(a, field.inv(a)) == 1)

    def test_inv_zero_raises(self, field):
        with pytest.raises(FieldError):
            field.inv(0)
        with pytest.raises(FieldError):
            field.inv(np.array([1, 0, 2], dtype=np.uint32))

    def test_div(self, field, rng):
        a = field.random(50, rng)
        b = field.random_nonzero(50, rng)
        q = field.div(a, b)
        assert np.array_equal(field.mul(q, b), field.asarray(a))

    def test_pow_small_exponents(self, field, rng):
        a = field.random_nonzero(50, rng)
        assert np.all(field.pow(a, 0) == 1)
        assert np.array_equal(field.pow(a, 1), field.asarray(a))
        assert np.array_equal(field.pow(a, 2), field.mul(a, a))
        assert np.array_equal(field.pow(a, 3), field.mul(a, field.mul(a, a)))

    def test_pow_fermat(self, field, rng):
        # a^(q-1) = 1 for nonzero a.
        a = field.random_nonzero(20, rng)
        assert np.all(field.pow(a, field.q - 1) == 1)

    def test_pow_negative_raises(self, field):
        with pytest.raises(FieldError):
            field.pow(3, -1)

    def test_broadcasting(self, field, rng):
        a = field.random((4, 5), rng)
        s = field.asarray(7 % field.q or 3)
        out = field.mul(a, s)
        assert out.shape == (4, 5)
        col = field.random((4, 1), rng)
        row = field.random((1, 5), rng)
        assert field.mul(col, row).shape == (4, 5)

    def test_out_of_range_rejected(self, field):
        with pytest.raises(FieldError):
            field.asarray(field.q)
        with pytest.raises(FieldError):
            field.mul(field.q, 1)


class TestLinearOps:
    def test_dot_matches_manual(self, field, rng):
        k, m = 5, 16
        coeffs = field.random(k, rng)
        vectors = field.random((k, m), rng)
        expected = field.zeros(m)
        for j in range(k):
            expected ^= field.mul(coeffs[j], vectors[j])
        assert np.array_equal(field.dot(coeffs, vectors), expected)

    def test_dot_shape_mismatch(self, field, rng):
        with pytest.raises(FieldError):
            field.dot(field.random(3, rng), field.random((4, 8), rng))

    def test_matmul_identity(self, field, rng):
        n = 6
        eye = field.zeros((n, n))
        eye[np.arange(n), np.arange(n)] = 1
        A = field.random((n, n), rng)
        assert np.array_equal(field.matmul(eye, A), A)
        assert np.array_equal(field.matmul(A, eye), A)

    def test_matmul_associative(self, field_fast, rng):
        F = field_fast
        A = F.random((3, 4), rng)
        B = F.random((4, 5), rng)
        C = F.random((5, 2), rng)
        left = F.matmul(F.matmul(A, B), C)
        right = F.matmul(A, F.matmul(B, C))
        assert np.array_equal(left, right)

    def test_matmul_shape_mismatch(self, field, rng):
        with pytest.raises(FieldError):
            field.matmul(field.random((2, 3), rng), field.random((4, 2), rng))


class TestExhaustiveGF256:
    """Full verification of GF(2^8): every product and inverse against
    the integer polynomial reference."""

    def test_every_product(self):
        from repro.gf.polynomials import poly_mod, poly_mul

        F = GF(8)
        a, b = np.meshgrid(
            np.arange(256, dtype=np.uint32), np.arange(256, dtype=np.uint32)
        )
        table = F.mul(a, b)
        for x in range(0, 256, 17):  # spot-check rows exactly
            for y in range(256):
                assert int(table[y, x]) == poly_mod(poly_mul(x, y), F.modulus)

    def test_every_inverse(self):
        F = GF(8)
        elements = np.arange(1, 256, dtype=np.uint32)
        inverses = F.inv(elements)
        assert np.all(F.mul(elements, inverses) == 1)
        # Inversion is an involution and a bijection.
        assert np.array_equal(F.inv(inverses), elements)
        assert len(set(inverses.tolist())) == 255

    def test_multiplicative_group_is_cyclic_of_order_255(self):
        F = GF(8)
        g = np.uint32(2)  # x generates, since the modulus is primitive
        seen = set()
        value = np.uint32(1)
        for _ in range(255):
            value = F.mul(value, g)
            seen.add(int(value))
        assert len(seen) == 255
        assert int(value) == 1  # g^255 = 1


class TestEquality:
    def test_eq_and_hash(self):
        assert GF(8) == TableField(8)
        assert hash(GF(8)) == hash(TableField(8))
        assert GF(8) != GF(16)
        assert GF(8) != ClmulField(8)  # different backend, different type
