"""Property-based equivalence of the vectorised kernels vs a naive oracle.

The vectorised layer (``addmul``/``scale_rows``/``dot``/``matmul``, the
bit-packed matmul engine, and the blocked ``row_reduce``) must be
*bit-identical* to textbook arithmetic.  The oracle here is deliberately
naive: carryless shift-and-XOR multiplication on Python ints, driven by
``field.modulus`` only, with no shared code paths with the kernels under
test.  Hypothesis sweeps all supported fields, random shapes, and the
zero/singular edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    GF,
    SingularMatrixError,
    inv_matrix,
    row_reduce,
    solve,
)
from repro.gf.bitmatmul import bit_matmul
from repro.obs import observability

FIELDS = {p: GF(p) for p in (4, 8, 16, 32)}


# ---------------------------------------------------------------- oracle


def _clmul_reduce(a: int, b: int, p: int, modulus: int) -> int:
    """Carryless multiply then reduce by the field polynomial."""
    acc = 0
    for i in range(p):
        if (b >> i) & 1:
            acc ^= a << i
    for i in range(2 * p - 2, p - 1, -1):
        if (acc >> i) & 1:
            acc ^= modulus << (i - p)
    return acc & ((1 << p) - 1)


def ref_mul(field, a: int, b: int) -> int:
    """Oracle product: clmul for p <= 16, textbook tower rule for p = 32."""
    if field.p <= 16:
        return _clmul_reduce(a, b, field.p, field.modulus)
    # GF(2^32) = GF(2^16)[y] / (y^2 + y + c): multiply the two linear
    # polynomials and reduce y^2 -> y + c over the base field.
    base, c = field.base, int(field.c)
    mask = (1 << 16) - 1
    a0, a1 = a & mask, a >> 16
    b0, b1 = b & mask, b >> 16

    def m(x, y):
        return _clmul_reduce(x, y, 16, base.modulus)

    hh = m(a1, b1)
    hi = m(a1, b0) ^ m(a0, b1) ^ hh
    lo = m(a0, b0) ^ m(c, hh)
    return (hi << 16) | lo


def ref_inv(field, a: int) -> int:
    if a == 0:
        raise ZeroDivisionError
    e = (1 << field.p) - 2  # Fermat: a^(q-2) = a^-1
    result, base = 1, a
    while e:
        if e & 1:
            result = ref_mul(field, result, base)
        base = ref_mul(field, base, base)
        e >>= 1
    return result


def ref_matmul(field, A, B):
    r, n = A.shape
    m = B.shape[1]
    out = np.zeros((r, m), dtype=np.uint64)
    for i in range(r):
        for j in range(m):
            acc = 0
            for t in range(n):
                acc ^= ref_mul(field, int(A[i, t]), int(B[t, j]))
            out[i, j] = acc
    return out.astype(A.dtype)


def ref_row_reduce(field, M):
    """Textbook Gauss-Jordan on a list-of-int-lists copy."""
    A = [[int(x) for x in row] for row in M]
    rows = len(A)
    cols = len(A[0]) if rows else 0
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        src = next((i for i in range(pivot_row, rows) if A[i][col]), None)
        if src is None:
            continue
        A[pivot_row], A[src] = A[src], A[pivot_row]
        inv = ref_inv(field, A[pivot_row][col])
        A[pivot_row] = [ref_mul(field, inv, x) for x in A[pivot_row]]
        for i in range(rows):
            if i != pivot_row and A[i][col]:
                f = A[i][col]
                A[i] = [
                    x ^ ref_mul(field, f, y)
                    for x, y in zip(A[i], A[pivot_row])
                ]
        pivot_row += 1
    return np.array(A, dtype=M.dtype), pivot_row


def arrays(data, field, shape, zero_bias=False):
    q = 1 << field.p
    elems = st.integers(min_value=0, max_value=q - 1)
    if zero_bias:
        elems = st.one_of(st.just(0), elems)
    size = int(np.prod(shape))
    flat = data.draw(st.lists(elems, min_size=size, max_size=size))
    return np.array(flat, dtype=field.dtype).reshape(shape)


# ------------------------------------------------------------ properties


@pytest.mark.parametrize("p", sorted(FIELDS))
class TestKernelEquivalence:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_addmul_matches_oracle(self, p, data):
        field = FIELDS[p]
        n = data.draw(st.integers(1, 12))
        y = arrays(data, field, (n,))
        x = arrays(data, field, (n,))
        a = data.draw(st.integers(0, (1 << p) - 1))
        expected = np.array(
            [
                int(yv) ^ ref_mul(field, a, int(xv))
                for yv, xv in zip(y, x)
            ],
            dtype=field.dtype,
        )
        got = field.addmul(y.copy(), field.asarray(a), x)
        assert np.array_equal(got, expected)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_addmul_elementwise_factors(self, p, data):
        field = FIELDS[p]
        rows = data.draw(st.integers(1, 4))
        cols = data.draw(st.integers(1, 6))
        y = arrays(data, field, (rows, cols))
        x = arrays(data, field, (1, cols))
        f = arrays(data, field, (rows, 1), zero_bias=True)
        expected = y.copy()
        for i in range(rows):
            for j in range(cols):
                expected[i, j] ^= ref_mul(field, int(f[i, 0]), int(x[0, j]))
        got = field.addmul(y.copy(), f, x)
        assert np.array_equal(got, expected)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_scale_rows_matches_oracle(self, p, data):
        field = FIELDS[p]
        n = data.draw(st.integers(1, 12))
        rows = arrays(data, field, (n,))
        factor = data.draw(st.integers(0, (1 << p) - 1))
        expected = np.array(
            [ref_mul(field, factor, int(v)) for v in rows],
            dtype=field.dtype,
        )
        buf = rows.copy()
        field.scale_rows(buf, field.asarray(factor))
        assert np.array_equal(buf, expected)

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_dot_matches_oracle(self, p, data):
        field = FIELDS[p]
        n = data.draw(st.integers(1, 5))
        m = data.draw(st.integers(1, 6))
        coeffs = arrays(data, field, (n,), zero_bias=True)
        vectors = arrays(data, field, (n, m))
        expected = ref_matmul(field, coeffs[None, :], vectors)[0]
        assert np.array_equal(field.dot(coeffs, vectors), expected)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_matmul_matches_oracle(self, p, data):
        field = FIELDS[p]
        r = data.draw(st.integers(1, 4))
        n = data.draw(st.integers(1, 4))
        m = data.draw(st.integers(1, 5))
        A = arrays(data, field, (r, n), zero_bias=True)
        B = arrays(data, field, (n, m))
        expected = ref_matmul(field, A, B)
        assert np.array_equal(field.matmul(A, B), expected)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_bit_engine_matches_oracle(self, p, data):
        """Exercise the packed engine directly, below its size threshold."""
        field = FIELDS[p]
        r = data.draw(st.integers(1, 3))
        n = data.draw(st.integers(1, 3))
        m = data.draw(st.integers(1, 70))  # crosses one 64-symbol word
        A = arrays(data, field, (r, n), zero_bias=True)
        B = arrays(data, field, (n, m))
        expected = ref_matmul(field, A, B)
        assert np.array_equal(bit_matmul(field, A, B), expected)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_row_reduce_matches_oracle(self, p, data):
        field = FIELDS[p]
        rows = data.draw(st.integers(1, 4))
        cols = data.draw(st.integers(1, 5))
        M = arrays(data, field, (rows, cols), zero_bias=True)
        expected, expected_rank = ref_row_reduce(field, M)
        got, got_rank = row_reduce(field, M)
        assert got_rank == expected_rank
        assert np.array_equal(got, expected)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_solve_matches_oracle(self, p, data):
        field = FIELDS[p]
        n = data.draw(st.integers(1, 4))
        m = data.draw(st.integers(1, 4))
        A = arrays(data, field, (n, n), zero_bias=True)
        B = arrays(data, field, (n, m))
        aug, r = ref_row_reduce(field, np.concatenate([A, B], axis=1))
        identity = np.zeros((n, n), dtype=field.dtype)
        identity[np.arange(n), np.arange(n)] = 1
        singular = r < n or not np.array_equal(aug[:, :n], identity)
        if singular:
            with pytest.raises(SingularMatrixError):
                solve(field, A, B)
        else:
            assert np.array_equal(solve(field, A, B), aug[:, n:])


# ---------------------------------------------------------- edge cases


@pytest.mark.parametrize("p", sorted(FIELDS))
class TestKernelEdgeCases:
    def test_zero_matrix_ops(self, p):
        field = FIELDS[p]
        Z = field.zeros((3, 4))
        assert np.array_equal(field.matmul(Z, field.zeros((4, 5))), field.zeros((3, 5)))
        reduced, r = row_reduce(field, Z)
        assert r == 0 and not reduced.any()
        y = field.zeros(4)
        assert not field.addmul(y, field.asarray(0), field.zeros(4)).any()

    def test_zero_scale(self, p):
        field = FIELDS[p]
        buf = field.asarray(np.arange(1, 5) % (1 << p)).copy()
        field.scale_rows(buf, field.asarray(0))
        assert not buf.any()

    def test_singular_solve_raises(self, p, rng):
        field = FIELDS[p]
        row = field.random_nonzero((4,), rng)
        A = np.stack([row, row, field.random((4,), rng), field.random((4,), rng)])
        with pytest.raises(SingularMatrixError):
            solve(field, A, field.random((4, 3), rng))
        with pytest.raises(SingularMatrixError):
            inv_matrix(field, A)

    def test_wide_solve_shortcut_matches_narrow(self, p, rng):
        """The inv+matmul shortcut (wide RHS) equals the augmented path."""
        from repro.gf.linalg import _solve

        field = FIELDS[p]
        n = 6
        A = field.random((n, n), rng)
        while True:
            try:
                inv_matrix(field, A)
                break
            except SingularMatrixError:
                A = field.random((n, n), rng)
        B = field.random((n, 4096), rng)  # n * 4096 >= 1 << 14 -> shortcut
        wide = _solve(field, A, B)
        narrow = np.column_stack(
            [_solve(field, A, B[:, j]) for j in range(8)]
        )
        assert np.array_equal(wide[:, :8], narrow)

    def test_identical_with_observability_on(self, p, rng):
        field = FIELDS[p]
        A = field.random((5, 5), rng)
        B = field.random((5, 7), rng)
        y = field.random((7,), rng)
        x = field.random((7,), rng)
        a = field.random_nonzero((), rng)
        plain = (
            field.matmul(A, B),
            field.addmul(y.copy(), a, x),
            row_reduce(field, A),
        )
        with observability(reset=True):
            gated = (
                field.matmul(A, B),
                field.addmul(y.copy(), a, x),
                row_reduce(field, A),
            )
        assert np.array_equal(plain[0], gated[0])
        assert np.array_equal(plain[1], gated[1])
        assert np.array_equal(plain[2][0], gated[2][0])
        assert plain[2][1] == gated[2][1]
