"""Property-based (hypothesis) tests of the field axioms.

Every backend must satisfy the finite-field axioms for arbitrary
elements, not just the random samples of the unit tests.  Hypothesis
drives element generation (including adversarial values like 0, 1 and
q-1) across all four paper fields.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF, ClmulField

FIELDS = {p: GF(p) for p in (4, 8, 16, 32)}
CLMUL = {p: ClmulField(p, FIELDS[p].modulus) if p <= 16 else None for p in FIELDS}


def elements(p):
    return st.integers(min_value=0, max_value=(1 << p) - 1)


@pytest.mark.parametrize("p", sorted(FIELDS))
class TestFieldAxioms:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_additive_group(self, p, data):
        F = FIELDS[p]
        a = data.draw(elements(p))
        b = data.draw(elements(p))
        assert int(F.add(a, b)) == a ^ b
        assert int(F.add(a, a)) == 0  # characteristic 2
        assert int(F.add(a, 0)) == a

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_multiplicative_axioms(self, p, data):
        F = FIELDS[p]
        a = data.draw(elements(p))
        b = data.draw(elements(p))
        c = data.draw(elements(p))
        ab = int(F.mul(a, b))
        assert ab == int(F.mul(b, a))
        assert int(F.mul(a, F.mul(b, c))) == int(F.mul(F.mul(a, b), c))
        assert int(F.mul(a, 1)) == a
        assert int(F.mul(a, 0)) == 0

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_distributivity(self, p, data):
        F = FIELDS[p]
        a = data.draw(elements(p))
        b = data.draw(elements(p))
        c = data.draw(elements(p))
        assert int(F.mul(a, b ^ c)) == int(F.mul(a, b)) ^ int(F.mul(a, c))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_inverses(self, p, data):
        F = FIELDS[p]
        a = data.draw(elements(p).filter(lambda x: x != 0))
        inv = int(F.inv(a))
        assert 0 < inv < F.q
        assert int(F.mul(a, inv)) == 1

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_no_zero_divisors(self, p, data):
        F = FIELDS[p]
        a = data.draw(elements(p).filter(lambda x: x != 0))
        b = data.draw(elements(p).filter(lambda x: x != 0))
        assert int(F.mul(a, b)) != 0

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_pow_matches_repeated_mul(self, p, data):
        F = FIELDS[p]
        a = data.draw(elements(p))
        e = data.draw(st.integers(min_value=0, max_value=12))
        expected = 1
        for _ in range(e):
            expected = int(F.mul(expected, a))
        assert int(F.pow(a, e)) == expected


@pytest.mark.parametrize("p", [4, 8, 16])
class TestBackendAgreement:
    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_table_vs_clmul(self, p, data):
        T, C = FIELDS[p], CLMUL[p]
        a = data.draw(elements(p))
        b = data.draw(elements(p))
        assert int(T.mul(a, b)) == int(C.mul(a, b))


class TestVectorisedConsistency:
    """Vectorised ops must equal their scalar decomposition."""

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_vector_mul_equals_scalar_loop(self, data):
        p = data.draw(st.sampled_from([4, 8, 16, 32]))
        F = FIELDS[p]
        xs = data.draw(st.lists(elements(p), min_size=1, max_size=16))
        ys = data.draw(
            st.lists(elements(p), min_size=len(xs), max_size=len(xs))
        )
        a = np.array(xs, dtype=np.uint32)
        b = np.array(ys, dtype=np.uint32)
        out = F.mul(a, b)
        for x, y, z in zip(xs, ys, out.tolist()):
            assert int(F.mul(x, y)) == z
