"""Unit tests for GF(2) polynomial arithmetic and modulus verification."""

import pytest

from repro.gf.polynomials import (
    DEFAULT_MODULI,
    find_irreducible,
    is_irreducible,
    is_primitive,
    poly_degree,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_mulmod,
    poly_powmod_x,
    prime_factors,
)


class TestBasicOps:
    def test_degree(self):
        assert poly_degree(0) == -1
        assert poly_degree(1) == 0
        assert poly_degree(2) == 1  # x
        assert poly_degree(0x13) == 4

    def test_mul_simple(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert poly_mul(0b11, 0b11) == 0b101
        # x * x = x^2
        assert poly_mul(2, 2) == 4

    def test_mul_identity_and_zero(self):
        assert poly_mul(0x13, 1) == 0x13
        assert poly_mul(0x13, 0) == 0

    def test_mul_commutes(self):
        assert poly_mul(0b1011, 0b110) == poly_mul(0b110, 0b1011)

    def test_mod(self):
        # x^4 mod (x^4 + x + 1) = x + 1
        assert poly_mod(0b10000, 0x13) == 0b11
        assert poly_mod(0x13, 0x13) == 0

    def test_mod_zero_modulus_raises(self):
        with pytest.raises(ZeroDivisionError):
            poly_mod(5, 0)

    def test_mulmod_stays_reduced(self):
        out = poly_mulmod(0b1111, 0b1101, 0x13)
        assert poly_degree(out) < 4

    def test_powmod_x(self):
        # x^1 = x; x^4 = x + 1 in GF(2^4) with x^4 + x + 1
        assert poly_powmod_x(1, 0x13) == 2
        assert poly_powmod_x(4, 0x13) == 0b11
        # order of x in GF(2^4)* is 15 for a primitive modulus
        assert poly_powmod_x(15, 0x13) == 1
        assert poly_powmod_x(5, 0x13) != 1

    def test_gcd(self):
        # gcd(x^2 + 1, x + 1) = x + 1 since x^2 + 1 = (x+1)^2
        assert poly_gcd(0b101, 0b11) == 0b11
        assert poly_gcd(0x13, 0) == 0x13


class TestPrimeFactors:
    def test_small(self):
        assert prime_factors(1) == []
        assert prime_factors(12) == [2, 3]
        assert prime_factors(17) == [17]

    def test_mersenne_like(self):
        assert prime_factors(2**16 - 1) == [3, 5, 17, 257]
        assert prime_factors(2**32 - 1) == [3, 5, 17, 257, 65537]


class TestIrreducibility:
    def test_known_irreducible(self):
        for f in (0b111, 0x13, 0x11D, 0x11B, 0x1100B):
            assert is_irreducible(f), hex(f)

    def test_known_reducible(self):
        # x^2 + 1 = (x+1)^2 ; x^4 + x^2 = x^2(x^2+1); anything even
        assert not is_irreducible(0b101)
        assert not is_irreducible(0b10100)
        assert not is_irreducible(0x13 << 1)

    def test_degree_zero_and_one(self):
        assert not is_irreducible(1)
        assert is_irreducible(2)  # x
        assert is_irreducible(3)  # x + 1

    def test_product_is_reducible(self):
        f = poly_mul(0x13, 0x11D)
        assert not is_irreducible(f)


class TestPrimitivity:
    def test_default_moduli_are_primitive(self):
        for p, f in DEFAULT_MODULI.items():
            assert poly_degree(f) == p
            assert is_primitive(f), f"DEFAULT_MODULI[{p}] = {f:#x}"

    def test_aes_modulus_is_irreducible_but_not_primitive(self):
        # The AES polynomial x^8+x^4+x^3+x+1: x has order 51, not 255.
        assert is_irreducible(0x11B)
        assert not is_primitive(0x11B)

    def test_reducible_is_not_primitive(self):
        assert not is_primitive(0b101)


class TestFindIrreducible:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 12, 20, 32])
    def test_found_polynomials_verify(self, n):
        f = find_irreducible(n)
        assert poly_degree(f) == n
        assert is_irreducible(f)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_primitive_search(self, n):
        f = find_irreducible(n, primitive=True)
        assert is_primitive(f)

    def test_deterministic(self):
        assert find_irreducible(10) == find_irreducible(10)

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            find_irreducible(0)
