"""Unit tests for the numeric forms of the paper's analytical results."""

import numpy as np
import pytest

from repro.core import (
    check_theorem1,
    corollary1_gap,
    denominator_gaussian_stats,
    eq6_lower_bound,
    overdeclaration_gradient,
    theorem1_alpha,
    theorem1_bound,
    theorem1_bound_eq12,
)


class TestAlpha:
    def test_sole_contributor_gets_alpha_one(self):
        # Only peer 0 contributes to user 1.
        A = np.array([[0.0, 5.0], [0.0, 0.0]])
        alpha = theorem1_alpha(A, np.array([0.5, 0.5]))
        assert alpha[0, 1] == pytest.approx(1.0)

    def test_split_contribution(self):
        # Users 0 and 1 contribute equally to user 2, all gammas 1.
        A = np.zeros((3, 3))
        A[0, 2] = 2.0
        A[1, 2] = 2.0
        alpha = theorem1_alpha(A, np.ones(3))
        assert alpha[0, 2] == pytest.approx(0.5)
        assert alpha[1, 2] == pytest.approx(0.5)

    def test_zero_denominator_is_zero(self):
        alpha = theorem1_alpha(np.zeros((2, 2)), np.ones(2))
        assert np.all(alpha == 0.0)

    def test_alpha_in_unit_interval(self, rng):
        A = rng.random((5, 5)) * 10
        g = rng.random(5)
        alpha = theorem1_alpha(A, g)
        assert np.all(alpha >= 0.0) and np.all(alpha <= 1.0)


class TestTheorem1Bounds:
    def test_isolation_term_dominates_without_sharing(self):
        mu = np.array([100.0, 200.0])
        g = np.array([0.5, 0.25])
        bound = theorem1_bound(mu, g, np.zeros((2, 2)))
        assert np.allclose(bound, g * mu)

    def test_eq12_adds_free_bandwidth(self):
        mu = np.array([100.0, 100.0])
        g = np.array([0.5, 0.5])
        A = np.array([[25.0, 25.0], [25.0, 25.0]])
        bound = theorem1_bound_eq12(mu, g, A)
        # bound_i = 0.5*100 + (1 - 0.5)*25 = 62.5
        assert np.allclose(bound, 62.5)

    def test_check_report(self):
        mu = np.array([100.0, 100.0])
        g = np.array([1.0, 1.0])
        A = np.array([[50.0, 50.0], [50.0, 50.0]])
        report = check_theorem1(mu, g, A, form="eq12")
        assert np.allclose(report.measured, 100.0)
        assert report.satisfied()

    def test_violation_detected(self):
        mu = np.array([100.0, 100.0])
        g = np.array([1.0, 1.0])
        # User 0 starved below isolation: measured 10 < bound 100.
        A = np.array([[10.0, 90.0], [0.0, 100.0]])
        report = check_theorem1(mu, g, A, form="eq12")
        assert not report.satisfied()
        assert report.slack[0] < 0

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            check_theorem1(np.ones(2), np.ones(2), np.zeros((2, 2)), form="x")

    def test_alpha_form_bounded_by_full_free_bandwidth(self, rng):
        mu = rng.random(4) * 1000
        g = rng.random(4)
        A = rng.random((4, 4)) * 100
        bound = theorem1_bound(mu, g, A)
        ceiling = g * (mu + np.array([
            sum((1 - g[l]) * mu[l] for l in range(4) if l != i) for i in range(4)
        ]))
        assert np.all(bound <= ceiling + 1e-9)


class TestCorollary1:
    def test_symmetric_is_zero(self):
        A = np.array([[1.0, 3.0], [3.0, 2.0]])
        assert corollary1_gap(A) == 0.0

    def test_asymmetric_positive(self):
        A = np.array([[0.0, 4.0], [1.0, 0.0]])
        assert corollary1_gap(A) > 0.0


class TestEq6:
    def test_saturated_equals_capacity(self):
        """With gamma = 1 everywhere the bound reduces to
        mu_j * sum(mu) / sum(mu) = mu_j."""
        mu = np.array([100.0, 300.0])
        bound = eq6_lower_bound(mu, np.ones(2))
        assert np.allclose(bound, mu)

    def test_idle_others_allow_exceeding_capacity(self):
        mu = np.array([100.0, 100.0])
        g = np.array([1.0, 0.0])
        bound = eq6_lower_bound(mu, g)
        # User 0 gets mu_0 * 200/100 = 200: both peers' capacity.
        assert bound[0] == pytest.approx(200.0)
        assert bound[1] == 0.0

    def test_strictly_above_isolation_unless_all_saturated(self):
        mu = np.array([100.0, 100.0, 100.0])
        g = np.array([0.5, 0.5, 0.5])
        bound = eq6_lower_bound(mu, g)
        assert np.all(bound > g * mu)


class TestOverdeclaration:
    def test_gradient_positive(self):
        grad = overdeclaration_gradient([100.0] * 4, [0.5] * 4, j=0)
        assert grad > 0

    def test_gradient_positive_heterogeneous(self, rng):
        mu = (rng.random(5) * 900 + 100).tolist()
        g = (rng.random(5) * 0.8 + 0.1).tolist()
        for j in range(5):
            assert overdeclaration_gradient(mu, g, j=j) > 0


class TestGaussianStats:
    def test_mean_and_variance(self):
        mu = np.array([10.0, 20.0, 30.0])
        g = np.array([0.5, 0.5, 1.0])
        mean, var = denominator_gaussian_stats(mu, g, j=2)
        assert mean == pytest.approx(15.0)
        assert var == pytest.approx(100 * 0.25 + 400 * 0.25)

    def test_saturated_has_zero_variance(self):
        mean, var = denominator_gaussian_stats(
            np.array([10.0, 10.0]), np.array([1.0, 1.0]), j=0
        )
        assert var == 0.0

    def test_variance_shrinks_with_n(self):
        """The concentration argument of Section IV-B: with total
        capacity fixed, more smaller peers -> smaller variance."""
        total = 1000.0
        stats = []
        for n in (10, 100, 1000):
            mu = np.full(n, total / n)
            g = np.full(n, 0.5)
            stats.append(denominator_gaussian_stats(mu, g, j=0)[1])
        assert stats[0] > stats[1] > stats[2]
