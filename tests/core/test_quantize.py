"""Tests for quantized bandwidth division."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContributionLedger,
    PeerwiseProportionalAllocator,
    QuantizedAllocator,
    quantize_shares,
)


class TestQuantizeShares:
    def test_exact_multiples_unchanged(self):
        shares = np.array([10.0, 20.0, 30.0])
        assert np.array_equal(quantize_shares(shares, 10.0), shares)

    def test_rounds_to_quanta(self):
        out = quantize_shares(np.array([12.0, 27.0]), 10.0)
        assert np.all(out % 10.0 == 0)
        # total 39 -> 3 quanta; remainders 0.2 and 0.7 -> 27 gets the spare
        assert out.tolist() == [10.0, 20.0]

    def test_total_preserved_to_quantum(self):
        shares = np.array([3.3, 3.3, 3.4])
        out = quantize_shares(shares, 1.0)
        assert out.sum() == 10.0

    def test_zero_shares(self):
        out = quantize_shares(np.zeros(3), 5.0)
        assert np.all(out == 0.0)

    def test_sub_quantum_shares_may_consolidate(self):
        # Three shares of 0.4 with quantum 1: one quantum total, given to
        # one of the (equal) remainders.
        out = quantize_shares(np.array([0.4, 0.4, 0.4]), 1.0)
        assert out.sum() == 1.0
        assert sorted(out.tolist()) == [0.0, 0.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_shares(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            quantize_shares(np.array([-1.0]), 1.0)

    @given(
        data=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        quantum=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_properties(self, data, quantum):
        shares = np.array(data)
        out = quantize_shares(shares, quantum)
        # Non-negative, quantum-aligned (up to float error), and no one
        # gains more than one quantum over their raw share.
        assert np.all(out >= 0)
        assert np.allclose(out / quantum, np.round(out / quantum), atol=1e-6)
        assert np.all(out <= shares + quantum * (1 + 1e-9))
        # Total never exceeds the raw total.
        assert out.sum() <= shares.sum() + 1e-6


class TestQuantizedAllocator:
    def _run(self, quantum, credits=(1.0, 3.0, 6.0), capacity=100.0):
        n = len(credits)
        ledger = ContributionLedger(n, initial=1e-9)
        ledger.record_received(np.asarray(credits, dtype=float))
        allocator = QuantizedAllocator(PeerwiseProportionalAllocator(), quantum)
        return allocator.allocate(
            0, capacity, np.ones(n, dtype=bool), ledger, np.zeros(n), 0
        )

    def test_small_quantum_near_exact(self):
        out = self._run(0.001)
        assert np.allclose(out, [10.0, 30.0, 60.0], atol=0.01)

    def test_large_quantum_coarsens(self):
        out = self._run(40.0)
        assert np.all(out % 40.0 == 0)
        assert out.sum() <= 100.0

    def test_extreme_quantum_starves_small_contributor(self):
        """The §III-D dilution: with a one-message-per-slot granularity
        comparable to the capacity, the small contributor gets nothing."""
        out = self._run(50.0)
        assert out[0] == 0.0  # deserved 10, rounded away

    def test_name_mentions_quantum(self):
        allocator = QuantizedAllocator(PeerwiseProportionalAllocator(), 8.0)
        assert "8" in allocator.name

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantizedAllocator(PeerwiseProportionalAllocator(), 0.0)

    def test_in_simulation_converges_with_fine_quantum(self):
        from repro.sim import AlwaysOn, PeerConfig, Simulation

        caps = [100.0, 300.0, 600.0]
        configs = [
            PeerConfig(
                capacity=c,
                demand=AlwaysOn(),
                allocator=QuantizedAllocator(PeerwiseProportionalAllocator(), 1.0),
            )
            for c in caps
        ]
        result = Simulation(configs).run(2000)
        final = result.window_mean_rates(1500, 2000)
        assert np.allclose(final, caps, rtol=0.05)
