"""Unit tests for adversarial allocation strategies."""

import numpy as np
import pytest

from repro.core import (
    ColluderAllocator,
    ContributionLedger,
    FreeRiderAllocator,
    RandomAllocator,
    SelfHoarderAllocator,
    WithholdingAllocator,
)


def run(allocator, capacity, requesting, credits=None, index=0):
    n = len(requesting)
    ledger = ContributionLedger(n, initial=1e-9)
    if credits is not None:
        ledger.record_received(np.asarray(credits, dtype=float))
    return allocator.allocate(
        index,
        capacity,
        np.asarray(requesting, dtype=bool),
        ledger,
        np.zeros(n),
        0,
    )


class TestFreeRider:
    def test_contributes_nothing(self):
        out = run(FreeRiderAllocator(), 100.0, [True, True, True])
        assert np.all(out == 0.0)


class TestSelfHoarder:
    def test_only_self(self):
        out = run(SelfHoarderAllocator(), 100.0, [True, True], index=1)
        assert np.allclose(out, [0.0, 100.0])

    def test_idle_when_self_idle(self):
        out = run(SelfHoarderAllocator(), 100.0, [True, False], index=1)
        assert np.all(out == 0.0)


class TestColluder:
    def test_only_coalition_served(self):
        out = run(
            ColluderAllocator([0, 1]),
            100.0,
            [True, True, True, True],
            credits=[1.0, 1.0, 50.0, 50.0],
        )
        assert out[2] == 0.0 and out[3] == 0.0
        assert out[:2].sum() == pytest.approx(100.0)

    def test_credit_weighted_within_coalition(self):
        out = run(
            ColluderAllocator([0, 1]),
            100.0,
            [True, True, False],
            credits=[3.0, 1.0, 0.0],
        )
        assert out[0] == pytest.approx(75.0)
        assert out[1] == pytest.approx(25.0)

    def test_nothing_when_coalition_idle(self):
        out = run(ColluderAllocator([0]), 100.0, [False, True, True])
        assert np.all(out == 0.0)

    def test_empty_coalition_rejected(self):
        with pytest.raises(ValueError):
            ColluderAllocator([])


class TestWithholding:
    def test_scales_capacity(self):
        full = run(
            WithholdingAllocator(1.0), 100.0, [True, True], credits=[1.0, 1.0]
        )
        half = run(
            WithholdingAllocator(0.5), 100.0, [True, True], credits=[1.0, 1.0]
        )
        assert np.allclose(half, np.asarray(full) / 2)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            WithholdingAllocator(1.5)
        with pytest.raises(ValueError):
            WithholdingAllocator(-0.1)

    def test_zero_fraction_is_free_rider(self):
        out = run(WithholdingAllocator(0.0), 100.0, [True, True])
        assert np.all(out == 0.0)


class TestRandomAllocator:
    def test_uses_full_capacity(self):
        out = run(RandomAllocator(seed=1), 100.0, [True, True, True])
        assert out.sum() == pytest.approx(100.0)

    def test_only_requesters(self):
        out = run(RandomAllocator(seed=1), 100.0, [True, False, True])
        assert out[1] == 0.0

    def test_varies_over_calls(self):
        allocator = RandomAllocator(seed=1)
        a = run(allocator, 100.0, [True, True, True])
        b = run(allocator, 100.0, [True, True, True])
        assert not np.allclose(a, b)

    def test_no_requesters(self):
        out = run(RandomAllocator(seed=1), 100.0, [False, False])
        assert np.all(out == 0.0)
