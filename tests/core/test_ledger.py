"""Unit tests for contribution ledgers."""

import numpy as np
import pytest

from repro.core import DEFAULT_INITIAL_CREDIT, ContributionLedger


class TestConstruction:
    def test_initial_credit_everywhere(self):
        ledger = ContributionLedger(4, initial=0.5)
        assert np.all(ledger.credits == 0.5)

    def test_default_initial_positive(self):
        ledger = ContributionLedger(3)
        assert np.all(ledger.credits == DEFAULT_INITIAL_CREDIT)
        assert DEFAULT_INITIAL_CREDIT > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=0),
            dict(n=3, initial=0.0),
            dict(n=3, initial=-1.0),
            dict(n=3, forgetting=0.0),
            dict(n=3, forgetting=1.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ContributionLedger(**kwargs)


class TestAccumulation:
    def test_record_received_accumulates(self):
        ledger = ContributionLedger(3, initial=1.0)
        ledger.record_received(np.array([10.0, 0.0, 5.0]))
        ledger.record_received(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(ledger.credits, [12.0, 3.0, 9.0])

    def test_record_from_single(self):
        ledger = ContributionLedger(2, initial=1.0)
        ledger.record_from(1, 4.0)
        assert ledger.credit_of(1) == 5.0
        assert ledger.credit_of(0) == 1.0

    def test_negative_rejected(self):
        ledger = ContributionLedger(2)
        with pytest.raises(ValueError):
            ledger.record_received(np.array([-1.0, 0.0]))
        with pytest.raises(ValueError):
            ledger.record_from(0, -0.1)

    def test_shape_enforced(self):
        ledger = ContributionLedger(3)
        with pytest.raises(ValueError):
            ledger.record_received(np.zeros(4))

    def test_credits_view_read_only(self):
        ledger = ContributionLedger(2)
        with pytest.raises(ValueError):
            ledger.credits[0] = 99.0

    def test_share_of(self):
        ledger = ContributionLedger(2, initial=1.0)
        ledger.record_from(0, 3.0)  # credits [4, 1]
        assert ledger.share_of(0) == pytest.approx(0.8)
        assert ledger.total() == pytest.approx(5.0)

    def test_reset(self):
        ledger = ContributionLedger(2, initial=1.0)
        ledger.record_from(0, 3.0)
        ledger.reset(initial=0.25)
        assert np.all(ledger.credits == 0.25)


class TestForgetting:
    def test_no_forgetting_is_plain_sum(self):
        ledger = ContributionLedger(1, initial=1.0, forgetting=1.0)
        for _ in range(10):
            ledger.record_received(np.array([2.0]))
        assert ledger.credit_of(0) == pytest.approx(21.0)

    def test_exponential_decay(self):
        ledger = ContributionLedger(1, initial=1.0, forgetting=0.5)
        ledger.record_received(np.array([0.0]))
        assert ledger.credit_of(0) == pytest.approx(0.5)
        ledger.record_received(np.array([4.0]))
        assert ledger.credit_of(0) == pytest.approx(4.25)

    def test_forgetting_bounds_memory(self):
        """With forgetting f and constant input c, credit converges to
        c / (1 - f) rather than growing without bound."""
        f, c = 0.9, 1.0
        ledger = ContributionLedger(1, initial=1.0, forgetting=f)
        for _ in range(500):
            ledger.record_received(np.array([c]))
        assert ledger.credit_of(0) == pytest.approx(c / (1 - f), rel=1e-6)

    def test_forgetting_weighs_recent_more(self):
        old_heavy = ContributionLedger(2, initial=1e-9, forgetting=0.9)
        # Peer 0 contributed long ago, peer 1 recently, same totals.
        old_heavy.record_received(np.array([100.0, 0.0]))
        for _ in range(50):
            old_heavy.record_received(np.array([0.0, 2.0]))
        # Peer 1's 100 total units outweigh peer 0's decayed 100.
        assert old_heavy.credit_of(1) > old_heavy.credit_of(0)
