"""Property-based tests of allocation-rule invariants.

Hypothesis drives credit vectors, request patterns and capacities;
the Equation (2) allocator and the feasibility clamp must satisfy their
invariants for *all* of them, not just the scenarios the figures use.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    ContributionLedger,
    EqualSplitAllocator,
    GlobalProportionalAllocator,
    PeerwiseProportionalAllocator,
    enforce_feasibility,
)


def credit_vectors(n):
    return st.lists(
        st.floats(min_value=1e-9, max_value=1e6, allow_nan=False),
        min_size=n,
        max_size=n,
    )


def request_masks(n):
    return st.lists(st.booleans(), min_size=n, max_size=n)


def ledger_with(credits, initial=1e-12):
    ledger = ContributionLedger(len(credits), initial=initial)
    ledger.record_received(np.asarray(credits))
    return ledger


@given(data=st.data(), n=st.integers(min_value=1, max_value=8))
@settings(max_examples=80, deadline=None)
def test_eq2_conservation_and_support(data, n):
    """Eq. (2) uses exactly the capacity iff someone requests, and only
    requesters receive."""
    credits = data.draw(credit_vectors(n))
    requesting = np.array(data.draw(request_masks(n)))
    capacity = data.draw(st.floats(min_value=0.0, max_value=1e5))
    out = PeerwiseProportionalAllocator().allocate(
        0, capacity, requesting, ledger_with(credits), np.zeros(n), 0
    )
    assert np.all(out >= 0)
    assert np.all(out[~requesting] == 0)
    if requesting.any():
        assert out.sum() == pytest.approx(capacity, rel=1e-9, abs=1e-12)
    else:
        assert out.sum() == 0.0


@given(data=st.data(), n=st.integers(min_value=2, max_value=8))
@settings(max_examples=80, deadline=None)
def test_eq2_proportionality(data, n):
    """Among requesters, shares are exactly proportional to credits."""
    credits = data.draw(credit_vectors(n))
    requesting = np.array(data.draw(request_masks(n)))
    assume(requesting.sum() >= 2)
    out = PeerwiseProportionalAllocator().allocate(
        0, 1000.0, requesting, ledger_with(credits), np.zeros(n), 0
    )
    idx = np.nonzero(requesting)[0]
    for a in idx:
        for b in idx:
            # out_a * credit_b == out_b * credit_a (cross-multiplied to
            # avoid dividing by tiny credits)
            assert out[a] * credits[b] == pytest.approx(
                out[b] * credits[a], rel=1e-6, abs=1e-6
            )


@given(data=st.data(), n=st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_eq2_scale_invariance(data, n):
    """Multiplying every credit (including the epsilon initialisation)
    by a constant changes nothing."""
    credits = data.draw(credit_vectors(n))
    scale = data.draw(st.floats(min_value=1e-3, max_value=1e3))
    requesting = np.ones(n, dtype=bool)
    a = PeerwiseProportionalAllocator().allocate(
        0, 100.0, requesting, ledger_with(credits), np.zeros(n), 0
    )
    b = PeerwiseProportionalAllocator().allocate(
        0, 100.0, requesting,
        ledger_with([c * scale for c in credits], initial=1e-12 * scale),
        np.zeros(n), 0,
    )
    assert np.allclose(a, b, rtol=1e-9)


@given(data=st.data(), n=st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_eq2_monotone_in_own_credit(data, n):
    """More recorded contribution never reduces the allocated share."""
    credits = data.draw(credit_vectors(n))
    bump = data.draw(st.floats(min_value=0.0, max_value=1e6))
    requesting = np.ones(n, dtype=bool)
    base = PeerwiseProportionalAllocator().allocate(
        0, 100.0, requesting, ledger_with(credits), np.zeros(n), 0
    )
    bumped_credits = list(credits)
    bumped_credits[1] += bump
    bumped = PeerwiseProportionalAllocator().allocate(
        0, 100.0, requesting, ledger_with(bumped_credits), np.zeros(n), 0
    )
    assert bumped[1] >= base[1] - 1e-9


@given(data=st.data(), n=st.integers(min_value=1, max_value=8))
@settings(max_examples=80, deadline=None)
def test_feasibility_clamp_invariants(data, n):
    proposal = np.array(
        data.draw(
            st.lists(
                st.floats(
                    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    requesting = np.array(data.draw(request_masks(n)))
    capacity = data.draw(st.floats(min_value=0.0, max_value=1e6))
    out = enforce_feasibility(proposal, capacity, requesting)
    assert np.all(out >= 0)
    assert out.sum() <= capacity * (1 + 1e-9)
    assert np.all(out[~requesting] == 0)
    # Clamping never *increases* anyone's allocation.
    assert np.all(out <= np.maximum(proposal, 0) + 1e-9)


@given(data=st.data(), n=st.integers(min_value=2, max_value=6))
@settings(max_examples=50, deadline=None)
def test_all_rules_feasible_after_clamp(data, n):
    """Every built-in allocator composed with the clamp is feasible."""
    credits = data.draw(credit_vectors(n))
    declared = data.draw(credit_vectors(n))
    requesting = np.array(data.draw(request_masks(n)))
    capacity = data.draw(st.floats(min_value=0.0, max_value=1e5))
    ledger = ledger_with(credits)
    for allocator in (
        PeerwiseProportionalAllocator(),
        GlobalProportionalAllocator(),
        EqualSplitAllocator(),
    ):
        proposal = allocator.allocate(
            0, capacity, requesting, ledger, np.asarray(declared), 0
        )
        out = enforce_feasibility(proposal, capacity, requesting)
        assert out.sum() <= capacity * (1 + 1e-9)
        assert np.all(out[~requesting] == 0)
