"""Unit tests for fairness metrics."""

import numpy as np
import pytest

from repro.core import (
    convergence_time,
    cooperation_gain,
    jain_index,
    max_pairwise_gap,
    normalized_exchange_ratio,
    pairwise_asymmetry,
    running_average,
)


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index(np.array([5.0, 5.0, 5.0])) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        # One user takes everything: index = 1/n.
        assert jain_index(np.array([10.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_scale_invariant(self):
        x = np.array([1.0, 2.0, 3.0])
        assert jain_index(x) == pytest.approx(jain_index(x * 100))

    def test_all_zero(self):
        assert jain_index(np.zeros(3)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index(np.array([]))


class TestPairwise:
    def test_symmetric_matrix_no_gap(self):
        A = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert max_pairwise_gap(A) == 0.0
        assert np.all(pairwise_asymmetry(A) == 0.0)

    def test_asymmetric_matrix(self):
        A = np.array([[0.0, 3.0], [1.0, 0.0]])
        assert pairwise_asymmetry(A)[0, 1] == pytest.approx(2.0)
        # relative gap: |3-1| / mean(3,1) = 2/2 = 1
        assert max_pairwise_gap(A, relative=True) == pytest.approx(1.0)
        assert max_pairwise_gap(A, relative=False) == pytest.approx(2.0)

    def test_diagonal_ignored_in_relative(self):
        A = np.array([[5.0, 1.0], [1.0, 7.0]])
        assert max_pairwise_gap(A) == 0.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            pairwise_asymmetry(np.zeros((2, 3)))


class TestExchangeRatio:
    def test_balanced_exchange_is_one(self):
        A = np.array([[0.0, 4.0], [2.0, 0.0]])
        gamma = np.array([0.5, 1.0])
        # mu_01 * g0 = 4*0.5 = 2 ; mu_10 * g1 = 2*1.0 = 2 -> ratio 1
        ratio = normalized_exchange_ratio(A, gamma)
        assert ratio[0, 1] == pytest.approx(1.0)
        assert ratio[1, 0] == pytest.approx(1.0)

    def test_zero_exchange_is_nan(self):
        A = np.array([[0.0, 0.0], [2.0, 0.0]])
        ratio = normalized_exchange_ratio(A, np.array([1.0, 1.0]))
        assert np.isnan(ratio[0, 1])


class TestConvergenceTime:
    def test_step_series(self):
        series = np.concatenate([np.zeros(50), np.full(200, 10.0)])
        assert convergence_time(series, 10.0, tolerance=0.1, hold=50) == 50

    def test_never_converges(self):
        series = np.zeros(100)
        assert convergence_time(series, 10.0) is None

    def test_late_excursion_resets(self):
        series = np.full(300, 10.0)
        series[250] = 0.0
        t = convergence_time(series, 10.0, tolerance=0.1, hold=20)
        assert t == 251

    def test_must_hold_to_end(self):
        series = np.full(100, 10.0)
        series[-1] = 0.0
        assert convergence_time(series, 10.0) is None

    def test_hold_requirement(self):
        series = np.concatenate([np.zeros(95), np.full(5, 10.0)])
        assert convergence_time(series, 10.0, hold=50) is None

    def test_zero_target(self):
        series = np.concatenate([np.ones(10), np.zeros(90)])
        assert convergence_time(series, 0.0, tolerance=0.01, hold=10) == 10

    def test_converged_from_start(self):
        series = np.full(100, 10.0)
        assert convergence_time(series, 10.0, hold=50) == 0


class TestCooperationGain:
    def test_gain_measured_only_while_requesting(self):
        rates = np.array([[0.0, 100.0], [300.0, 0.0]])
        requesting = np.array([[False, True], [True, False]])
        capacity = np.array([200.0, 50.0])
        gains = cooperation_gain(rates, capacity, requesting)
        assert gains[0] == pytest.approx(100.0)  # 300 - 200
        assert gains[1] == pytest.approx(50.0)  # 100 - 50

    def test_never_requesting_zero_gain(self):
        rates = np.zeros((5, 1))
        requesting = np.zeros((5, 1), dtype=bool)
        assert cooperation_gain(rates, np.array([10.0]), requesting)[0] == 0.0

    def test_time_varying_capacity(self):
        rates = np.array([[50.0], [50.0]])
        requesting = np.ones((2, 1), dtype=bool)
        capacity = np.array([[10.0], [30.0]])
        assert cooperation_gain(rates, capacity, requesting)[0] == pytest.approx(30.0)


class TestRunningAverage:
    def test_window_one_identity(self):
        s = np.array([1.0, 5.0, 3.0])
        assert np.array_equal(running_average(s, 1), s)

    def test_constant_series(self):
        s = np.full(20, 7.0)
        assert np.allclose(running_average(s, 10), 7.0)

    def test_trailing_mean(self):
        s = np.arange(10.0)
        out = running_average(s, 3)
        assert out[5] == pytest.approx((3 + 4 + 5) / 3)

    def test_warmup_partial_means(self):
        s = np.array([2.0, 4.0, 6.0, 8.0])
        out = running_average(s, 4)
        assert out[0] == 2.0
        assert out[1] == 3.0
        assert out[2] == 4.0
        assert out[3] == 5.0

    def test_2d_series(self):
        s = np.ones((30, 3))
        out = running_average(s, 10)
        assert out.shape == (30, 3)
        assert np.allclose(out, 1.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            running_average(np.ones(5), 0)

    def test_matches_paper_smoothing_semantics(self):
        """The paper smooths with a 10-second running average; verify the
        steady-state value is the plain mean of the last 10 samples."""
        rng = np.random.default_rng(3)
        s = rng.random(100)
        out = running_average(s, 10)
        assert out[50] == pytest.approx(s[41:51].mean())
