"""Unit tests for the baseline allocators (Eq. 3, isolation, equal split)."""

import numpy as np

from repro.core import (
    ContributionLedger,
    EqualSplitAllocator,
    GlobalProportionalAllocator,
    IsolationAllocator,
)


def run(allocator, capacity, requesting, declared, index=0):
    n = len(requesting)
    return allocator.allocate(
        index,
        capacity,
        np.asarray(requesting, dtype=bool),
        ContributionLedger(n),
        np.asarray(declared, dtype=float),
        0,
    )


class TestGlobalProportional:
    def test_proportional_to_declared(self):
        out = run(
            GlobalProportionalAllocator(), 100.0, [True, True, True], [10, 30, 60]
        )
        assert np.allclose(out, [10.0, 30.0, 60.0])

    def test_respects_requests(self):
        out = run(GlobalProportionalAllocator(), 100.0, [True, False], [50, 50])
        assert np.allclose(out, [100.0, 0.0])

    def test_zero_over_zero_convention(self):
        # "with the understanding that 0/0 = 0" — no declared capacity
        # among requesters means nothing is allocated.
        out = run(GlobalProportionalAllocator(), 100.0, [True, True], [0, 0])
        assert np.all(out == 0.0)

    def test_gameable_by_declaration(self):
        """The flaw the paper fixes: inflating a declaration inflates the
        received share under Equation (3)."""
        honest = run(GlobalProportionalAllocator(), 100.0, [True, True], [50, 50])
        inflated = run(GlobalProportionalAllocator(), 100.0, [True, True], [500, 50])
        assert inflated[0] > honest[0]


class TestIsolation:
    def test_serves_only_self(self):
        out = run(IsolationAllocator(), 100.0, [True, True, True], [0, 0, 0], index=1)
        assert np.allclose(out, [0.0, 100.0, 0.0])

    def test_nothing_when_own_user_idle(self):
        out = run(IsolationAllocator(), 100.0, [True, False, True], [0, 0, 0], index=1)
        assert np.all(out == 0.0)


class TestEqualSplit:
    def test_even_division(self):
        out = run(EqualSplitAllocator(), 90.0, [True, False, True, True], [0] * 4)
        assert np.allclose(out, [30.0, 0.0, 30.0, 30.0])

    def test_no_requesters(self):
        out = run(EqualSplitAllocator(), 90.0, [False, False], [0, 0])
        assert np.all(out == 0.0)

    def test_credit_blind(self):
        """Equal split ignores history entirely — the property the
        fairness ablation contrasts against."""
        n = 2
        rich = ContributionLedger(n, initial=1.0)
        rich.record_from(0, 1000.0)
        out = EqualSplitAllocator().allocate(
            0, 50.0, np.array([True, True]), rich, np.zeros(n), 0
        )
        assert np.allclose(out, [25.0, 25.0])


class TestAllocatorNames:
    def test_names_distinct(self):
        names = {
            GlobalProportionalAllocator().name,
            IsolationAllocator().name,
            EqualSplitAllocator().name,
        }
        assert len(names) == 3
