"""Unit tests for the Equation (2) allocator and feasibility enforcement."""

import numpy as np
import pytest

from repro.core import (
    ContributionLedger,
    PeerwiseProportionalAllocator,
    enforce_feasibility,
)
from repro.core.allocation import enforce_feasibility_rows


def allocate(allocator, capacity, requesting, credits, declared=None, index=0, t=0):
    n = len(requesting)
    ledger = ContributionLedger(n, initial=1e-9)
    ledger.record_received(np.asarray(credits, dtype=float))
    declared = np.asarray(declared if declared is not None else [0.0] * n)
    return allocator.allocate(
        index, capacity, np.asarray(requesting, dtype=bool), ledger, declared, t
    )


class TestEquation2:
    def test_proportional_to_credits(self):
        out = allocate(
            PeerwiseProportionalAllocator(),
            capacity=100.0,
            requesting=[True, True, True],
            credits=[1.0, 3.0, 6.0],
        )
        assert np.allclose(out, [10.0, 30.0, 60.0])

    def test_only_requesters_served(self):
        out = allocate(
            PeerwiseProportionalAllocator(),
            capacity=100.0,
            requesting=[True, False, True],
            credits=[1.0, 98.0, 1.0],
        )
        assert out[1] == 0.0
        assert np.allclose(out, [50.0, 0.0, 50.0])

    def test_full_capacity_used_when_requests_exist(self):
        out = allocate(
            PeerwiseProportionalAllocator(),
            capacity=64.0,
            requesting=[True, True, False],
            credits=[5.0, 2.0, 9.0],
        )
        assert out.sum() == pytest.approx(64.0)

    def test_no_requesters_no_allocation(self):
        out = allocate(
            PeerwiseProportionalAllocator(),
            capacity=64.0,
            requesting=[False, False],
            credits=[1.0, 1.0],
        )
        assert np.all(out == 0.0)

    def test_self_allocation_included(self):
        """The paper's departure from [16]: mu_ii is allowed, which is
        what removes the non-dominant condition."""
        out = allocate(
            PeerwiseProportionalAllocator(),
            capacity=10.0,
            requesting=[True, True],
            credits=[9.0, 1.0],
            index=0,
        )
        assert out[0] == pytest.approx(9.0)

    def test_equal_initial_credits_split_evenly(self):
        n = 4
        ledger = ContributionLedger(n, initial=1e-6)
        out = PeerwiseProportionalAllocator().allocate(
            0, 100.0, np.ones(n, dtype=bool), ledger, np.zeros(n), 0
        )
        assert np.allclose(out, 25.0)

    def test_ignores_declared_capacities(self):
        """Equation (2) must not be influenced by declarations."""
        a = allocate(
            PeerwiseProportionalAllocator(),
            100.0,
            [True, True],
            [1.0, 1.0],
            declared=[1.0, 1.0],
        )
        b = allocate(
            PeerwiseProportionalAllocator(),
            100.0,
            [True, True],
            [1.0, 1.0],
            declared=[1.0, 10_000.0],
        )
        assert np.array_equal(a, b)


class TestEnforceFeasibility:
    def test_negative_clipped(self):
        out = enforce_feasibility(np.array([-5.0, 10.0]), 20.0, [True, True])
        assert out[0] == 0.0 and out[1] == 10.0

    def test_non_requesters_zeroed(self):
        out = enforce_feasibility(np.array([5.0, 10.0]), 20.0, [True, False])
        assert out[1] == 0.0

    def test_over_capacity_scaled(self):
        out = enforce_feasibility(np.array([30.0, 10.0]), 20.0, [True, True])
        assert out.sum() == pytest.approx(20.0)
        assert out[0] / out[1] == pytest.approx(3.0)  # proportions kept

    def test_under_capacity_untouched(self):
        out = enforce_feasibility(np.array([3.0, 4.0]), 20.0, [True, True])
        assert np.allclose(out, [3.0, 4.0])

    def test_zero_capacity(self):
        out = enforce_feasibility(np.array([3.0, 4.0]), 0.0, [True, True])
        assert np.all(out == 0.0)

    def test_input_not_mutated(self):
        proposal = np.array([30.0, -1.0])
        enforce_feasibility(proposal, 10.0, [True, True])
        assert np.array_equal(proposal, [30.0, -1.0])


class TestEnforceFeasibilityCumsumClamp:
    """The rescale can overshoot capacity by an ulp when the scaled
    shares' sum rounds up; the cumsum-clamp branch must then trim the
    total to *exactly* the capacity."""

    def test_subnormal_capacity_scale_underflow(self):
        # Proposals huge, capacity subnormal: the scale factor
        # underflows to zero and everything is (validly) wiped out.
        cap = 5e-324
        out = enforce_feasibility(
            np.array([1e300, 1e300, 1e300]), cap, [True, True, True]
        )
        assert out.sum() <= cap
        assert np.all(out >= 0.0)

    def test_ulp_overflow_capacity_clamped_exactly(self):
        # A pair where proportional rescaling rounds the sum one ulp
        # *above* capacity, forcing the cumsum-clamp branch.
        proposals = np.array([
            0.997209935789211, 0.9808353387762301, 0.6855419844806947,
            0.6504592762678163, 0.6884467305709401,
        ])
        cap = 1.801237612324362
        scaled = proposals * (cap / proposals.sum())
        assert scaled.sum() > cap  # precondition: the branch fires
        out = enforce_feasibility(proposals, cap, [True] * 5)
        assert out.sum() <= cap
        # Proportions approximately preserved for the surviving mass.
        assert out[1] / out[0] == pytest.approx(
            proposals[1] / proposals[0], rel=1e-9
        )

    def test_subnormal_proposals_clamped_exactly(self):
        # Same branch with subnormal-range magnitudes.
        proposals = np.array([6.706244146936304e-301, 6.471895115742501e-301])
        cap = 8.616473445988356e-301
        scaled = proposals * (cap / proposals.sum())
        assert scaled.sum() > cap
        out = enforce_feasibility(proposals, cap, [True, True])
        assert out.sum() <= cap

    def test_zero_capacity_zeroes_row(self):
        out = enforce_feasibility(np.array([3.0, 4.0]), 0.0, [True, True])
        assert np.all(out == 0.0)

    def test_negative_capacity_zeroes_row(self):
        out = enforce_feasibility(np.array([3.0, 4.0]), -1.0, [True, True])
        assert np.all(out == 0.0)


class TestEnforceFeasibilityRows:
    """Matrix form must be bit-identical to mapping the scalar form."""

    def _reference(self, proposals, capacities, requesting):
        return np.stack(
            [
                enforce_feasibility(row, cap, requesting)
                for row, cap in zip(proposals, capacities)
            ]
        )

    def test_matches_per_row_bitwise(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(1, 12))
            proposals = (rng.random((n, n)) - 0.2) * rng.choice(
                [1e-9, 1.0, 1e9]
            )
            requesting = rng.random(n) < 0.6
            capacities = rng.random(n) * rng.choice(
                [0.0, 5e-324, 1e-300, 1.0, 2000.0]
            )
            got = enforce_feasibility_rows(proposals, capacities, requesting)
            want = self._reference(proposals, capacities, requesting)
            assert got.tobytes() == want.tobytes()

    def test_input_not_mutated(self):
        proposals = np.array([[30.0, -1.0], [2.0, 2.0]])
        enforce_feasibility_rows(
            proposals, np.array([10.0, 0.0]), np.array([True, True])
        )
        assert np.array_equal(proposals, [[30.0, -1.0], [2.0, 2.0]])
