"""Unit tests for protocol message types."""

import numpy as np
import pytest

from repro.rlnc import EncodedMessage
from repro.transfer import (
    DataMessage,
    FeedbackUpdate,
    FileAccept,
    FileRequest,
    StopTransmission,
)


def sample_message():
    return EncodedMessage(
        file_id=1, message_id=2, payload=np.arange(4, dtype=np.uint32), p=16
    )


class TestDataMessage:
    def test_wire_bytes(self):
        dm = DataMessage(sample_message())
        assert dm.wire_bytes == dm.message.wire_size()

    def test_frozen(self):
        dm = DataMessage(sample_message())
        with pytest.raises(AttributeError):
            dm.message = None


class TestSimpleMessages:
    def test_file_request_accept(self):
        req = FileRequest(file_id=7)
        acc = FileAccept(file_id=7, available_messages=8)
        assert req.file_id == acc.file_id

    def test_stop(self):
        assert StopTransmission(file_id=3).file_id == 3

    def test_feedback_update(self):
        fb = FeedbackUpdate(user=2, received=(0.0, 1.5, 3.0))
        assert fb.user == 2
        assert sum(fb.received) == pytest.approx(4.5)
