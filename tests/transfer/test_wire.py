"""Tests for the control-plane wire framing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlnc import EncodedMessage
from repro.security import Challenge, ChallengeResponse
from repro.transfer import (
    AuthChallenge,
    AuthResponse,
    DataMessage,
    FeedbackUpdate,
    FileAccept,
    FileRequest,
    StopTransmission,
    WireFormatError,
    decode_frame,
    encode_frame,
)


def sample_frames():
    challenge = Challenge(nonce=b"N" * 32, context=b"download file 5")
    payload = np.arange(6, dtype=np.uint32)
    return [
        AuthChallenge(challenge),
        AuthResponse(challenge, ChallengeResponse(signature=123456789 ** 3)),
        FileRequest(file_id=0xCAFE),
        FileAccept(file_id=0xCAFE, available_messages=8),
        DataMessage(EncodedMessage(file_id=1, message_id=2, payload=payload, p=16)),
        StopTransmission(file_id=0xCAFE),
        StopTransmission(file_id=-1),
        FeedbackUpdate(user=3, received=(0.0, 12.5, 99.75)),
    ]


class TestRoundtrip:
    @pytest.mark.parametrize("frame", sample_frames(), ids=lambda f: type(f).__name__)
    def test_each_frame_type(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert type(decoded) is type(frame)
        if isinstance(frame, DataMessage):
            assert decoded.message.file_id == frame.message.file_id
            assert decoded.message.message_id == frame.message.message_id
            assert np.array_equal(decoded.message.payload, frame.message.payload)
        else:
            assert decoded == frame

    def test_frame_types_distinct(self):
        frames = sample_frames()
        first_bytes = {encode_frame(f)[0] for f in frames}
        # 8 samples but StopTransmission appears twice
        assert len(first_bytes) == 7


class TestStrictness:
    def test_empty(self):
        with pytest.raises(WireFormatError):
            decode_frame(b"")

    def test_unknown_type(self):
        with pytest.raises(WireFormatError):
            decode_frame(b"\xff\x00")

    def test_truncation_every_prefix(self):
        wire = encode_frame(sample_frames()[1])  # AuthResponse, nested fields
        for cut in range(1, len(wire)):
            with pytest.raises(WireFormatError):
                decode_frame(wire[:cut])

    def test_trailing_garbage(self):
        wire = encode_frame(FileRequest(file_id=7))
        with pytest.raises(WireFormatError):
            decode_frame(wire + b"\x00")

    def test_bad_symbol_width(self):
        wire = bytearray(encode_frame(sample_frames()[4]))
        wire[1:5] = (0).to_bytes(4, "big")  # p = 0
        with pytest.raises(WireFormatError):
            decode_frame(bytes(wire))

    def test_non_protocol_object(self):
        with pytest.raises(WireFormatError):
            encode_frame("hello")


class TestProperties:
    @given(
        file_id=st.integers(min_value=0, max_value=(1 << 64) - 1),
        available=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_accept_roundtrip(self, file_id, available):
        frame = FileAccept(file_id=file_id, available_messages=available)
        assert decode_frame(encode_frame(frame)) == frame

    @given(
        nonce=st.binary(min_size=0, max_size=64),
        context=st.binary(min_size=0, max_size=64),
        signature=st.integers(min_value=0, max_value=1 << 512),
    )
    @settings(max_examples=50, deadline=None)
    def test_auth_response_roundtrip(self, nonce, context, signature):
        frame = AuthResponse(
            Challenge(nonce=nonce, context=context),
            ChallengeResponse(signature=signature),
        )
        assert decode_frame(encode_frame(frame)) == frame

    @given(
        user=st.integers(min_value=0, max_value=(1 << 32) - 1),
        received=st.lists(
            st.floats(min_value=0, max_value=1e9, allow_nan=False), max_size=16
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_feedback_roundtrip(self, user, received):
        frame = FeedbackUpdate(user=user, received=tuple(received))
        assert decode_frame(encode_frame(frame)) == frame


class TestEndToEndHandshakeOverWire:
    def test_signed_exchange_survives_framing(self):
        """Run the challenge-response through encode/decode, as a socket
        deployment would."""
        from repro.security import Prover, Verifier, generate_keypair

        keys = generate_keypair(bits=512, seed=3)
        verifier = Verifier(keys.public)
        challenge_frame = encode_frame(AuthChallenge(verifier.issue_challenge()))

        # ... travels to the user ...
        received = decode_frame(challenge_frame)
        response_frame = encode_frame(
            AuthResponse(
                received.challenge, Prover(keys.private).respond(received.challenge)
            )
        )

        # ... travels back to the peer ...
        answer = decode_frame(response_frame)
        assert verifier.verify(answer.challenge, answer.response)


class TestContextEnvelope:
    """Trace-context envelope (frame type 8) around any inner frame."""

    def _span(self):
        from repro.obs.spans import SpanHandle

        return SpanHandle(trace_id=0xAB, span_id=0xCD, parent_id=0, op="x")

    @pytest.mark.parametrize(
        "frame", sample_frames(), ids=lambda f: type(f).__name__
    )
    def test_wrap_unwrap_every_frame_type(self, frame):
        from repro.transfer.wire import extract_context, inject_context

        wire = inject_context(encode_frame(frame), span=self._span())
        assert wire[0] == 8
        remote, inner = extract_context(wire)
        assert remote.trace_id == 0xAB and remote.span_id == 0xCD
        assert inner == encode_frame(frame)
        decoded = decode_frame(inner)
        assert type(decoded) is type(frame)

    def test_no_span_means_no_envelope(self):
        from repro.transfer.wire import extract_context, inject_context

        wire = encode_frame(FileRequest(file_id=1))
        assert inject_context(wire) == wire  # no active span
        remote, inner = extract_context(wire)
        assert remote is None and inner == wire

    def test_current_span_is_picked_up(self):
        from repro.obs import TRACER
        from repro.obs.spans import span_scope
        from repro.transfer.wire import extract_context, inject_context

        prev = TRACER.enabled
        TRACER.enabled = True
        try:
            with span_scope("send") as span:
                wire = inject_context(encode_frame(FileRequest(file_id=2)))
        finally:
            TRACER.enabled = prev
            TRACER.clear()
        remote, _ = extract_context(wire)
        assert remote.trace_id == span.trace_id
        assert remote.span_id == span.span_id

    def test_truncated_envelope_raises(self):
        from repro.transfer.wire import extract_context, inject_context

        wire = inject_context(
            encode_frame(FileRequest(file_id=3)), span=self._span()
        )
        for cut in range(1, len(wire)):
            with pytest.raises(WireFormatError):
                extract_context(wire[:cut])

    def test_trailing_garbage_raises(self):
        from repro.transfer.wire import extract_context, inject_context

        wire = inject_context(
            encode_frame(FileRequest(file_id=4)), span=self._span()
        )
        with pytest.raises(WireFormatError):
            extract_context(wire + b"\x00")

    def test_empty_inner_frame_raises(self):
        import struct

        from repro.transfer.wire import extract_context

        wire = bytes([8]) + struct.pack(">QQI", 1, 2, 0)
        with pytest.raises(WireFormatError, match="empty frame"):
            extract_context(wire)
