"""Unit tests for serving/download session state machines."""

import pytest

from repro.rlnc import CodingParams, FileEncoder
from repro.security import generate_keypair
from repro.storage import MessageStore
from repro.transfer import (
    DownloadSession,
    FileRequest,
    ProtocolError,
    ServingSession,
    StopTransmission,
)

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0x22


@pytest.fixture(scope="module")
def user_keys():
    return generate_keypair(bits=512, seed=77)


@pytest.fixture
def store(rng):
    encoder = FileEncoder(PARAMS, b"s", file_id=FILE_ID)
    encoded = encoder.encode_bundles(rng.bytes(500), n_peers=1)
    s = MessageStore()
    s.add_messages(encoded.bundles[0])
    return s


@pytest.fixture
def serving(store, user_keys):
    return ServingSession(store, user_keys.public)


def authed(serving, user_keys, file_id=FILE_ID):
    DownloadSession(user_keys).handshake(serving, file_id)
    return serving


class TestHandshake:
    def test_happy_path(self, serving, user_keys):
        accept = DownloadSession(user_keys).handshake(serving, FILE_ID)
        assert accept.file_id == FILE_ID
        assert accept.available_messages == PARAMS.k
        assert serving.active

    def test_request_before_auth_rejected(self, serving):
        with pytest.raises(ProtocolError):
            serving.accept_request(FileRequest(FILE_ID))

    def test_wrong_key_rejected(self, serving):
        imposter = generate_keypair(bits=512, seed=666)
        with pytest.raises(ProtocolError):
            DownloadSession(imposter).handshake(serving, FILE_ID)
        assert not serving.active

    def test_serve_before_request_rejected(self, serving):
        with pytest.raises(ProtocolError):
            serving.serve(1000)


class TestServing:
    def test_whole_budget_delivers_all(self, serving, user_keys):
        authed(serving, user_keys)
        wire = PARAMS.k * (16 + PARAMS.message_bytes)
        delivered = serving.serve(wire)
        assert len(delivered) == PARAMS.k
        assert not serving.active  # exhausted

    def test_partial_budget_carries_over(self, serving, user_keys):
        authed(serving, user_keys)
        msg_size = 16 + PARAMS.message_bytes
        assert serving.serve(msg_size * 0.6) == []
        # The fractional progress persists: 0.6 + 0.6 > 1 message.
        assert len(serving.serve(msg_size * 0.6)) == 1

    def test_exact_budget_boundary(self, serving, user_keys):
        authed(serving, user_keys)
        msg_size = 16 + PARAMS.message_bytes
        assert len(serving.serve(msg_size)) == 1
        assert len(serving.serve(msg_size * 2)) == 2

    def test_zero_budget_nothing(self, serving, user_keys):
        authed(serving, user_keys)
        assert serving.serve(0) == []

    def test_negative_budget_rejected(self, serving, user_keys):
        authed(serving, user_keys)
        with pytest.raises(ValueError):
            serving.serve(-1)

    def test_stop_halts_stream(self, serving, user_keys):
        authed(serving, user_keys)
        serving.serve(16 + PARAMS.message_bytes)
        serving.stop(StopTransmission(FILE_ID))
        assert not serving.active
        assert serving.serve(10**9) == []

    def test_counters(self, serving, user_keys):
        authed(serving, user_keys)
        serving.serve(2 * (16 + PARAMS.message_bytes))
        assert serving.messages_sent == 2
        assert serving.bytes_sent == pytest.approx(2 * (16 + PARAMS.message_bytes))

    def test_serial_order_matches_store(self, store, user_keys):
        serving = ServingSession(store, user_keys.public)
        authed(serving, user_keys)
        delivered = serving.serve(10**9)
        expected = [m.message_id for m in store.messages(FILE_ID)]
        assert [d.message.message_id for d in delivered] == expected
