"""Unit tests for the parallel download scheduler."""

import pytest

from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore, generate_keypair
from repro.storage import MessageStore
from repro.transfer import (
    DownloadSession,
    ParallelDownloader,
    ServingSession,
    kbps_to_bytes,
)

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0x33


class TestKbpsToBytes:
    def test_conversion(self):
        assert kbps_to_bytes(8.0, 1.0) == 1000.0
        assert kbps_to_bytes(256.0, 2.0) == 64_000.0


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=512, seed=3)


def build(rng, n_peers, keys, tamper_peer=None, limit=None):
    data = rng.bytes(500)
    store = DigestStore()
    encoder = FileEncoder(PARAMS, b"s", file_id=FILE_ID)
    encoded = encoder.encode_bundles(data, n_peers=n_peers, digest_store=store)
    sessions = []
    for p in range(n_peers):
        mstore = MessageStore()
        bundle = encoded.bundles[p]
        if tamper_peer == p:
            import numpy as np

            bundle = tuple(
                m.with_payload(np.asarray(m.payload) ^ 0xBEEF) for m in bundle
            )
        mstore.add_messages(bundle, limit=limit)
        serving = ServingSession(mstore, keys.public)
        DownloadSession(keys).handshake(serving, FILE_ID)
        sessions.append(serving)
    decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
    return data, sessions, decoder


class TestDownload:
    def test_single_peer_completes(self, rng, keys):
        data, sessions, decoder = build(rng, 1, keys)
        dl = ParallelDownloader(sessions, decoder, lambda i, t: 256.0)
        report = dl.run(10_000, file_id=FILE_ID)
        assert report.complete
        assert decoder.result(len(data)) == data
        assert report.messages_delivered == PARAMS.k

    def test_parallel_faster_than_serial(self, rng, keys):
        # 1 kbps -> 125 B/slot; the file is ~640 wire bytes, so the
        # single-peer download needs several slots.
        data1, s1, d1 = build(rng, 1, keys)
        dl1 = ParallelDownloader(s1, d1, lambda i, t: 1.0)
        serial = dl1.run(10_000).slots
        assert serial > 2

        data4, s4, d4 = build(rng, 4, keys)
        dl4 = ParallelDownloader(s4, d4, lambda i, t: 1.0)
        parallel = dl4.run(10_000).slots
        assert parallel < serial

    def test_download_cap_scales_rates(self, rng, keys):
        data, sessions, decoder = build(rng, 4, keys)
        dl = ParallelDownloader(
            sessions, decoder, lambda i, t: 1000.0, download_cap_kbps=100.0
        )
        report = dl.run(10_000)
        assert report.complete
        # 4 x 1000 kbps offered but capped at 100 kbps aggregate.
        assert report.effective_rate_kbps() <= 100.0 * 1.05

    def test_stops_all_sessions_on_completion(self, rng, keys):
        data, sessions, decoder = build(rng, 4, keys)
        dl = ParallelDownloader(sessions, decoder, lambda i, t: 10_000.0)
        dl.run(10_000, file_id=FILE_ID)
        assert all(not s.active for s in sessions)

    def test_incomplete_when_budget_too_small(self, rng, keys):
        data, sessions, decoder = build(rng, 1, keys)
        dl = ParallelDownloader(sessions, decoder, lambda i, t: 1.0)
        report = dl.run(5)  # way too few slots at 1 kbps
        assert not report.complete
        assert report.slots == 5

    def test_tampering_peer_messages_rejected(self, rng, keys):
        data, sessions, decoder = build(rng, 2, keys, tamper_peer=0)
        dl = ParallelDownloader(sessions, decoder, lambda i, t: 500.0)
        report = dl.run(10_000, file_id=FILE_ID)
        assert report.complete  # honest peer 1 suffices
        assert report.messages_rejected >= 1
        assert decoder.result(len(data)) == data

    def test_per_peer_bytes_tracked(self, rng, keys):
        data, sessions, decoder = build(rng, 2, keys)
        rates = {0: 300.0, 1: 100.0}
        dl = ParallelDownloader(sessions, decoder, lambda i, t: rates[i])
        report = dl.run(10_000)
        assert report.per_peer_bytes[0] > report.per_peer_bytes[1]

    def test_dead_rate_peer_ignored(self, rng, keys):
        data, sessions, decoder = build(rng, 2, keys)
        dl = ParallelDownloader(
            sessions, decoder, lambda i, t: 0.0 if i == 0 else 200.0
        )
        report = dl.run(10_000)
        assert report.complete
        assert report.per_peer_bytes[0] == 0.0

    def test_validation(self, rng, keys):
        data, sessions, decoder = build(rng, 1, keys)
        with pytest.raises(ValueError):
            ParallelDownloader([], decoder, lambda i, t: 1.0)
        with pytest.raises(ValueError):
            ParallelDownloader(sessions, decoder, lambda i, t: 1.0, slot_seconds=0)


class TestReport:
    def test_effective_rate(self, rng, keys):
        data, sessions, decoder = build(rng, 1, keys)
        dl = ParallelDownloader(sessions, decoder, lambda i, t: 64.0)
        report = dl.run(10_000)
        assert report.effective_rate_kbps() <= 64.0 * 1.01
        assert report.seconds == report.slots

    def test_seconds_honours_slot_length(self, rng, keys):
        # Regression: `seconds` used to assume 1-second slots regardless
        # of the downloader's actual slot_seconds.
        data, sessions, decoder = build(rng, 1, keys)
        dl = ParallelDownloader(
            sessions, decoder, lambda i, t: 64.0, slot_seconds=0.5
        )
        report = dl.run(10_000)
        assert report.slot_seconds == 0.5
        assert report.seconds == report.slots * 0.5
        # effective_rate_kbps defaults to the report's own slot length.
        assert report.effective_rate_kbps() == report.effective_rate_kbps(0.5)
