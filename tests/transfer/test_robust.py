"""Unit tests for the failure-aware download path (RobustPolicy)."""

import pytest

from repro.faults import FaultPlan, PeerFault
from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore, generate_keypair
from repro.storage import MessageStore
from repro.transfer import (
    DownloadSession,
    LatencyModel,
    ParallelDownloader,
    RobustPolicy,
    ServingSession,
    SessionCrashed,
)

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0x55


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=512, seed=9)


def build(rng, n_peers, keys, plan=None):
    """Encoded file served by ``n_peers``, wrapped per the fault plan.

    Returns ``(data, sessions, decoder, digests)``; each peer holds the
    full bundle so any single honest peer can complete the download.
    """
    data = rng.bytes(500)
    digests = DigestStore()
    encoder = FileEncoder(PARAMS, b"s", file_id=FILE_ID)
    encoded = encoder.encode_bundles(data, n_peers=n_peers, digest_store=digests)
    sessions = []
    for p in range(n_peers):
        mstore = MessageStore()
        mstore.add_messages(encoded.bundles[p])
        sessions.append(ServingSession(mstore, keys.public))
    if plan is not None:
        sessions = plan.wrap(sessions)
    for p, session in enumerate(sessions):
        accept, _, _ = DownloadSession(keys).handshake_with_retry(
            session, FILE_ID, peer=p
        )
    decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, digests)
    return data, sessions, decoder, digests


def run(sessions, decoder, digests, rate=20.0, max_slots=10_000, **kw):
    policy = RobustPolicy(digest_store=digests, **kw)
    dl = ParallelDownloader(sessions, decoder, lambda i, t: rate, policy=policy)
    return dl.run(max_slots, file_id=FILE_ID)


class TestPollution:
    def test_polluted_peer_quarantined_and_decode_succeeds(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("pollute")})
        data, sessions, decoder, digests = build(rng, 3, keys, plan)
        report = run(sessions, decoder, digests)
        assert report.complete
        assert decoder.result(len(data)) == data
        failure = report.failure_of(0)
        assert failure is not None and failure.kind == "polluted"
        assert failure.messages_discarded >= 1
        assert failure.bytes_discarded > 0
        # Verification happens *before* the decoder: nothing polluted
        # ever reached it, so it never had to reject a forged row.
        assert decoder.rejected == 0
        assert report.messages_rejected == 0

    def test_quarantine_threshold_respected(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("pollute")})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests, quarantine_after=3)
        assert report.complete
        assert report.failure_of(0).messages_discarded >= 3

    def test_no_digest_store_disables_filtering(self, rng, keys):
        # Without the carried digests the robust path cannot tell
        # pollution apart; the decoder's own consistency check is the
        # last line of defence.
        plan = FaultPlan(seed=1, faults={0: PeerFault("pollute")})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        policy = RobustPolicy(digest_store=None)
        dl = ParallelDownloader(sessions, decoder, lambda i, t: 20.0, policy=policy)
        report = dl.run(10_000, file_id=FILE_ID)
        assert report.complete
        assert decoder.result(len(data)) == data
        assert decoder.rejected >= 1
        assert report.failure_of(0) is None  # pollution went unattributed


class TestCrash:
    def test_crash_survived_and_attributed(self, rng, keys):
        wire = 16 + PARAMS.m * PARAMS.p // 8
        plan = FaultPlan(seed=1, faults={0: PeerFault("crash", at_byte=wire * 2)})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests)
        assert report.complete
        assert decoder.result(len(data)) == data
        assert report.failure_of(0).kind == "crashed"

    def test_pre_crash_messages_still_count(self, rng, keys):
        wire = 16 + PARAMS.m * PARAMS.p // 8
        # Generous rate: the crash budget covers 3 whole messages first.
        plan = FaultPlan(seed=1, faults={0: PeerFault("crash", at_byte=wire * 3)})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests, rate=1000.0)
        assert report.complete
        assert report.messages_delivered >= PARAMS.k

    def test_crash_propagates_without_policy(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("crash", at_byte=0)})
        data, sessions, decoder, _ = build(rng, 1, keys, plan)
        dl = ParallelDownloader(sessions, decoder, lambda i, t: 20.0)
        with pytest.raises(SessionCrashed):
            dl.run(100, file_id=FILE_ID)


class TestStall:
    def test_stalled_peer_quarantined(self, rng, keys):
        plan = FaultPlan(
            seed=1, faults={0: PeerFault("stall", at_slot=0, duration=10_000)}
        )
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        # 1 kbps = 125 B/slot against a ~640-wire-byte file: the download
        # spans enough slots for the stall timeout to trip mid-run.
        report = run(sessions, decoder, digests, rate=1.0, stall_timeout_slots=4)
        assert report.complete
        failure = report.failure_of(0)
        assert failure.kind == "stalled"
        assert failure.bytes_discarded > 0  # the budget the silence wasted

    def test_short_stall_not_misclassified(self, rng, keys):
        plan = FaultPlan(
            seed=1, faults={0: PeerFault("stall", at_slot=0, duration=2)}
        )
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests, rate=40.0, stall_timeout_slots=12)
        assert report.complete
        assert report.failure_of(0) is None


class TestRefusal:
    def test_refused_peer_classified_at_start(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("refuse")})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests)
        assert report.complete
        failure = report.failure_of(0)
        assert failure.kind == "refused" and failure.slot == 0
        assert report.per_peer_bytes[0] == 0.0


class TestRedistribution:
    def test_lost_share_rescaled_to_healthy_peers(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("refuse")})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests, rate=20.0)
        # Peer 1 absorbs peer 0's share: 40 kbps -> 5000 B/slot.
        assert report.per_peer_bytes[1] / report.slots == pytest.approx(5000.0)

    def test_redistribution_can_be_disabled(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("refuse")})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests, rate=20.0, redistribute=False)
        assert report.per_peer_bytes[1] / report.slots == pytest.approx(2500.0)


class TestBitIdentical:
    def test_policy_none_matches_legacy_report(self, rng, keys):
        seed_state = rng.bit_generator.state
        data, sessions, decoder, digests = build(rng, 3, keys)
        legacy = ParallelDownloader(sessions, decoder, lambda i, t: 20.0).run(
            10_000, file_id=FILE_ID
        )
        rng.bit_generator.state = seed_state
        data2, sessions2, decoder2, digests2 = build(rng, 3, keys)
        robust = run(sessions2, decoder2, digests2, rate=20.0)
        assert robust.complete and legacy.complete
        assert robust.slots == legacy.slots
        assert robust.bytes_received == legacy.bytes_received
        assert robust.per_peer_bytes == legacy.per_peer_bytes
        assert robust.messages_delivered == legacy.messages_delivered
        assert robust.failures == ()

    def test_empty_plan_wrap_is_identity(self, rng, keys):
        data, sessions, decoder, digests = build(rng, 2, keys, FaultPlan(seed=0))
        assert all(isinstance(s, ServingSession) for s in sessions)


class TestLatencyPath:
    def test_faults_survived_under_latency(self, rng, keys):
        plan = FaultPlan(
            seed=1,
            faults={
                0: PeerFault("pollute"),
                1: PeerFault("crash", at_byte=500),
            },
        )
        data, sessions, decoder, digests = build(rng, 4, keys, plan)
        latency = LatencyModel([2.0] * len(sessions))
        policy = RobustPolicy(digest_store=digests)
        dl = ParallelDownloader(
            sessions, decoder, lambda i, t: 20.0, latency=latency, policy=policy
        )
        report = dl.run(10_000, file_id=FILE_ID)
        assert report.complete
        assert decoder.result(len(data)) == data
        assert report.failure_of(0).kind == "polluted"
        assert report.failure_of(1).kind == "crashed"
        assert decoder.rejected == 0


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"stall_timeout_slots": 0},
            {"quarantine_after": 0},
            {"max_handshake_attempts": 0},
            {"backoff_slots": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ValueError):
            RobustPolicy(**kw)


class TestReportTaxonomy:
    def test_to_dict_includes_failures(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("pollute")})
        data, sessions, decoder, digests = build(rng, 2, keys, plan)
        report = run(sessions, decoder, digests)
        blob = report.to_dict()
        assert blob["complete"] is True
        assert blob["failures"][0]["peer"] == 0
        assert blob["failures"][0]["kind"] == "polluted"
        assert blob["bytes_discarded"] == report.bytes_discarded
        assert report.failed_peers == (0,)

    def test_seconds_scales_with_slot_seconds(self, rng, keys):
        data, sessions, decoder, digests = build(rng, 1, keys)
        dl = ParallelDownloader(
            sessions, decoder, lambda i, t: 10.0, slot_seconds=2.0
        )
        report = dl.run(10_000, file_id=FILE_ID)
        assert report.complete
        assert report.seconds == report.slots * 2.0
        assert report.to_dict()["seconds"] == report.seconds


class TestHandshakeRetry:
    def test_retry_backoff_accounting(self, rng, keys):
        plan = FaultPlan(seed=1, faults={0: PeerFault("refuse")})
        data, sessions, decoder, digests = build(rng, 1, keys, plan)
        accept, attempts, waited = DownloadSession(keys).handshake_with_retry(
            sessions[0], FILE_ID, attempts=3, backoff_slots=2
        )
        assert accept is None
        assert attempts == 3
        assert waited == 2 + 4 + 6  # linear backoff: 2*1 + 2*2 + 2*3

    def test_succeeds_first_try_on_honest_peer(self, rng, keys):
        data, sessions, decoder, digests = build(rng, 1, keys)
        accept, attempts, waited = DownloadSession(keys).handshake_with_retry(
            sessions[0], FILE_ID
        )
        assert accept is not None and attempts == 1 and waited == 0
