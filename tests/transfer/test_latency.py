"""Tests for the latency-aware transfer path."""

import pytest

from repro.rlnc import CodingParams, FileEncoder, ProgressiveDecoder
from repro.security import DigestStore, generate_keypair
from repro.storage import MessageStore
from repro.transfer import (
    DownloadSession,
    LatencyModel,
    ParallelDownloader,
    ServingSession,
)

PARAMS = CodingParams(p=16, m=32, file_bytes=512)  # k = 8
FILE_ID = 0x44


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=512, seed=44)


def build(rng, n_peers, keys):
    data = rng.bytes(500)
    store = DigestStore()
    encoder = FileEncoder(PARAMS, b"s", file_id=FILE_ID)
    encoded = encoder.encode_bundles(data, n_peers=n_peers, digest_store=store)
    sessions = []
    for p in range(n_peers):
        mstore = MessageStore()
        mstore.add_messages(encoded.bundles[p])
        serving = ServingSession(mstore, keys.public)
        DownloadSession(keys).handshake(serving, FILE_ID)
        sessions.append(serving)
    decoder = ProgressiveDecoder(PARAMS, encoder.coefficients, store)
    return data, sessions, decoder


class TestLatencyModel:
    def test_slot_conversions(self):
        model = LatencyModel([0.0, 1.0, 2.5], slot_seconds=1.0)
        assert model.handshake_slots(0) == 0
        assert model.handshake_slots(1) == 2  # 2 RTTs
        assert model.handshake_slots(2) == 5
        assert model.delivery_slots(1) == 1  # ceil(0.5)
        assert model.stop_slots(2) == 2  # ceil(1.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel([])
        with pytest.raises(ValueError):
            LatencyModel([-1.0])
        with pytest.raises(ValueError):
            LatencyModel([1.0], slot_seconds=0)

    def test_session_count_checked(self, rng, keys):
        data, sessions, decoder = build(rng, 2, keys)
        with pytest.raises(ValueError):
            ParallelDownloader(
                sessions, decoder, lambda i, t: 1.0, latency=LatencyModel([1.0])
            )


class TestLatencyEffects:
    def test_zero_latency_matches_plain_run(self, rng, keys):
        data, s1, d1 = build(rng, 2, keys)
        plain = ParallelDownloader(s1, d1, lambda i, t: 100.0).run(1000, FILE_ID)
        data2, s2, d2 = build(rng, 2, keys)
        zero = ParallelDownloader(
            s2, d2, lambda i, t: 100.0, latency=LatencyModel([0.0, 0.0])
        ).run(1000, FILE_ID)
        assert zero.complete and plain.complete
        assert zero.messages_delivered == plain.messages_delivered
        assert zero.wasted_bytes == 0.0

    def test_handshake_delays_first_byte(self, rng, keys):
        data, sessions, decoder = build(rng, 2, keys)
        model = LatencyModel([3.0, 3.0])  # handshake = 6 slots
        report = ParallelDownloader(
            sessions, decoder, lambda i, t: 500.0, latency=model
        ).run(1000, FILE_ID)
        assert report.complete
        assert report.first_data_slot == 6

    def test_latency_extends_download(self, rng, keys):
        data, s1, d1 = build(rng, 2, keys)
        fast = ParallelDownloader(s1, d1, lambda i, t: 50.0).run(1000, FILE_ID)
        data2, s2, d2 = build(rng, 2, keys)
        slow = ParallelDownloader(
            s2, d2, lambda i, t: 50.0, latency=LatencyModel([2.0, 2.0])
        ).run(1000, FILE_ID)
        assert slow.complete
        assert slow.slots > fast.slots

    def test_stop_lag_wastes_bytes(self, rng, keys):
        # Slow rates keep all four peers mid-stream when decoding
        # completes, so the 2-slot stop lag produces measurable waste.
        data, sessions, decoder = build(rng, 4, keys)
        model = LatencyModel([4.0] * 4)
        rate = 0.5  # kbps -> 62.5 B/slot, ~1.3 slots per message
        report = ParallelDownloader(
            sessions, decoder, lambda i, t: rate, latency=model
        ).run(2000, FILE_ID)
        assert report.complete
        assert report.wasted_bytes > 0
        # and the waste is bounded by rate x stop-lag x peers
        bound = 4 * rate * 1000 / 8 * (model.stop_slots(0) + 1)
        assert report.wasted_bytes <= bound

    def test_heterogeneous_rtts(self, rng, keys):
        """A far peer joins late but still contributes."""
        data, sessions, decoder = build(rng, 2, keys)
        model = LatencyModel([0.0, 10.0])
        # 0.2 kbps -> 25 B/slot: peer 0 alone would need ~26 slots, so
        # peer 1 (handshake done at slot 20) still gets to contribute.
        report = ParallelDownloader(
            sessions, decoder, lambda i, t: 0.2, latency=model
        ).run(2000, FILE_ID)
        assert report.complete
        assert report.per_peer_bytes[0] > report.per_peer_bytes[1] > 0

    def test_incomplete_when_slots_exhausted(self, rng, keys):
        data, sessions, decoder = build(rng, 1, keys)
        model = LatencyModel([5.0])
        report = ParallelDownloader(
            sessions, decoder, lambda i, t: 1000.0, latency=model
        ).run(5, FILE_ID)  # handshake alone takes 10 slots
        assert not report.complete
        assert report.bytes_received == 0.0
